package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"prestores/internal/bench"
	"prestores/internal/obs"
	"prestores/internal/server"
	"prestores/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards are the worker daemons' base URLs (e.g. http://w1:8344).
	// At least one is required.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring;
	// <= 0 means the package default (128).
	Replicas int
	// RequestTimeout bounds each unary proxied call (submit, status,
	// cancel, listings); <= 0 means 30 s. Streams are never timed.
	RequestTimeout time.Duration
	// ProbeInterval is the health-probe period; <= 0 means 2 s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe; <= 0 means 2 s.
	ProbeTimeout time.Duration
	// MaxRequeues bounds how many times one job may be rerouted after
	// shard loss; <= 0 means 2 × len(Shards).
	MaxRequeues int
	// MaxJobs bounds tracked job mappings, oldest evicted first;
	// <= 0 means 4096.
	MaxJobs int
	// AutotuneWorkers sizes the embedded autotune host's worker pool —
	// the number of concurrent autotuning searches (each search fans its
	// candidate evaluations out across the shards); <= 0 means 2.
	AutotuneWorkers int
	// Backoff paces retries against a shard answering 429 during a
	// requeue. The zero value is the shared default schedule.
	Backoff Backoff
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
	// Transport overrides the HTTP transport (tests); nil means default.
	Transport http.RoundTripper
	// Instance labels the coordinator's spans, typically its listen
	// address. Empty is fine for tests.
	Instance string
	// Flight is the always-on flight recorder shared with the embedded
	// host; nil means a fresh default-sized one.
	Flight *obs.FlightRecorder
}

// Coordinator fronts a fleet of prestored worker shards with the same
// HTTP surface a single daemon exposes. Submits are routed by
// consistent hashing of the request's content-address routing key, so
// identical work always lands on the same shard and the shards' result
// caches compose into a distributed cache. Status, stream, artifact
// and cancel requests are proxied to the owning shard. When a shard
// dies, its jobs are requeued to the next ring position and client
// streams resume at the exact byte offset already forwarded — output
// determinism (the golden byte-identity guard) makes the re-run's
// bytes identical, so clients cannot observe the failover.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	sc     *shardClient
	prober *prober
	mux    *http.ServeMux
	log    *slog.Logger

	// tuner is the embedded host: a full worker daemon that runs the
	// coordinator-resident jobs — POST /v1/autotune searches whose
	// candidate evaluations fan out across the shards through
	// clusterEvaluator, and POST /v1/analyses trace analyses whose
	// per-chunk map steps fan out through clusterAnalyzer (the trace
	// store lives on the coordinator too). Its job IDs ("job-N") are
	// disjoint from routed ones ("cjob-N"), which is how /v1/jobs
	// dispatch tells them apart.
	tuner *server.Server

	mu     sync.Mutex
	closed bool
	seq    uint64
	jobs   map[string]*cjob
	order  []string // job IDs, eviction order

	tracer *obs.Tracer // routing/requeue spans, merged with shard spans per job
	spans  *obs.Store
	flight *obs.FlightRecorder

	m     cmetrics
	start time.Time
}

// cjob is the coordinator's view of one routed job: where it lives
// now, the original submit body (the requeue payload), and the
// terminal status once known.
type cjob struct {
	id   string
	kind string
	path string // submit path, e.g. /v1/experiments
	key  string // routing key
	body []byte // original submit body, forwarded verbatim

	// sc is the job's root span context on the coordinator (trace
	// continued from the client's traceparent header when present);
	// parentSpan is the client span it nests under. submitted is the
	// root span's start; the span closes at the first terminal status.
	sc         obs.SpanContext
	parentSpan obs.SpanID
	submitted  time.Time

	// routeMu serializes requeues; mu guards the fields below.
	routeMu  sync.Mutex
	mu       sync.Mutex
	shard    int
	remoteID string
	requeues int
	result   *server.JobStatus // terminal status, ID already rewritten
}

func (j *cjob) placement() (shard int, remoteID string, result *server.JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.shard, j.remoteID, j.result
}

var errNoHealthyShard = errors.New("no healthy worker shard")

// New builds a Coordinator over the given shards and starts its
// health prober. Serve Handler(), stop with Shutdown.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one worker shard is required")
	}
	for i, s := range cfg.Shards {
		cfg.Shards[i] = trimSlash(s)
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = 2 * len(cfg.Shards)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Flight == nil {
		cfg.Flight = obs.NewFlightRecorder(0)
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.Shards, cfg.Replicas),
		sc:     newShardClient(cfg.RequestTimeout, cfg.Backoff, cfg.Transport),
		log:    cfg.Logger,
		jobs:   map[string]*cjob{},
		spans:  obs.NewStore(0, 0),
		flight: cfg.Flight,
		start:  time.Now(),
	}
	c.tracer = &obs.Tracer{Service: "coordinator", Instance: cfg.Instance, Store: c.spans}
	// Pre-seed every per-shard counter family with the configured
	// shards: the series exist (at 0) from the very first scrape and
	// never appear, vanish or reset as shards bounce in and out of the
	// ring — counter monotonicity holds per series for the life of the
	// coordinator process.
	c.m.seed(cfg.Shards)
	c.prober = newProber(cfg.Shards, c.sc, cfg.ProbeInterval, cfg.ProbeTimeout, c.log,
		func(shard int, healthy bool) {
			if !healthy {
				c.m.probeDowns.inc(cfg.Shards[shard])
				c.flight.Record("shard.down", "", "", cfg.Shards[shard])
			} else {
				c.flight.Record("shard.up", "", "", cfg.Shards[shard])
			}
		})
	tuneWorkers := cfg.AutotuneWorkers
	if tuneWorkers <= 0 {
		tuneWorkers = 2
	}
	c.tuner = server.New(server.Config{
		Workers:           tuneWorkers,
		AutotuneEvaluator: clusterEvaluator{c: c},
		ChunkAnalyzer:     clusterAnalyzer{c: c},
		Logger:            cfg.Logger,
		Instance:          "embedded",
		Flight:            cfg.Flight, // one black box for the whole coordinator process
	})
	c.routes()
	go c.prober.run()
	return c, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops the prober, refuses new submits and drains the
// embedded autotune host. The coordinator runs no routed jobs of its
// own — in-flight proxied streams end when their client or shard side
// does.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.prober.close()
	return c.tuner.Shutdown(ctx)
}

// routeKey content-addresses a submit for placement: the job kind and
// the body's canonical JSON (sorted keys, insignificant whitespace
// dropped, numbers kept verbatim), hashed. Placement does not need to
// equal the workers' cache keys — it only needs to be stable, so that
// identical submits always reach the shard holding the cached result.
func routeKey(kind string, body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return "", err
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ---- HTTP surface ----

func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/experiments", c.submitHandler("experiment"))
	c.mux.HandleFunc("POST /v1/dirtbuster", c.submitHandler("dirtbuster"))
	c.mux.HandleFunc("POST /v1/trace", c.submitHandler("trace"))
	c.mux.HandleFunc("POST /v1/scenarios", c.submitHandler("scenario"))
	c.mux.HandleFunc("POST /v1/eval", c.submitHandler("eval"))
	c.mux.HandleFunc("POST /v1/autotune", c.embedded)
	c.mux.HandleFunc("POST /v1/traces", c.embedded)
	c.mux.HandleFunc("GET /v1/traces", c.embedded)
	c.mux.HandleFunc("PUT /v1/traces/uploads/{id}", c.embedded)
	c.mux.HandleFunc("POST /v1/traces/uploads/{id}/commit", c.embedded)
	c.mux.HandleFunc("DELETE /v1/traces/uploads/{id}", c.embedded)
	c.mux.HandleFunc("GET /v1/traces/{address}", c.embedded)
	c.mux.HandleFunc("DELETE /v1/traces/{address}", c.embedded)
	c.mux.HandleFunc("POST /v1/analyses", c.embedded)
	c.mux.HandleFunc("GET /v1/experiments", c.passthrough("/v1/experiments"))
	c.mux.HandleFunc("GET /v1/registry", c.passthrough("/v1/registry"))
	c.mux.HandleFunc("GET /v1/workloads", c.passthrough("/v1/workloads"))
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleGetJob)
	c.mux.HandleFunc("GET /v1/jobs/{id}/stream", c.handleStreamJob)
	c.mux.HandleFunc("GET /v1/jobs/{id}/timeline", c.artifactHandler("timeline"))
	c.mux.HandleFunc("GET /v1/jobs/{id}/linereport", c.artifactHandler("linereport"))
	c.mux.HandleFunc("GET /v1/jobs/{id}/trajectory", c.artifactHandler("trajectory"))
	c.mux.HandleFunc("GET /v1/jobs/{id}/winner", c.artifactHandler("winner"))
	c.mux.HandleFunc("GET /v1/jobs/{id}/spans", c.handleJobSpans)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancelJob)
	c.mux.HandleFunc("GET /v1/debug/flightrecorder", c.handleFlightRecorder)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func streamRequested(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// parseOffset reads the ?offset=N replay parameter (0 when absent).
func parseOffset(r *http.Request) (int, error) {
	v := r.URL.Query().Get("offset")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad offset %q (want a non-negative integer)", v)
	}
	return n, nil
}

// submitHandler routes one submit: compute the routing key, walk the
// ring's preference order over healthy shards, forward the body
// verbatim, and rewrite the answering shard's job handle into the
// coordinator's namespace. Application-level answers (429 queue full,
// 400 bad spec, 404 unknown experiment) pass through untouched — only
// a shard that fails to answer at all is demoted and skipped.
func (c *Coordinator) submitHandler(kind string) http.HandlerFunc {
	path := map[string]string{
		"experiment": "/v1/experiments",
		"dirtbuster": "/v1/dirtbuster",
		"trace":      "/v1/trace",
		"scenario":   "/v1/scenarios",
		"eval":       "/v1/eval",
	}[kind]
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			writeError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
		key, err := routeKey(kind, body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}

		// The routed job's root span on the coordinator: it continues
		// the client's trace (traceparent header) when one was sent, and
		// every shard attempt propagates it downstream, so client span,
		// coordinator routing and shard-side execution share a trace ID.
		clientSC, _ := obs.Extract(r.Header)
		sc := c.tracer.Child(clientSC)
		submitted := time.Now()
		rctx := obs.ContextWithSpan(r.Context(), sc)

		tried := 0
		for _, shard := range c.ring.Sequence(key) {
			if !c.prober.healthy(shard) {
				continue
			}
			tried++
			attempt := time.Now()
			sr, err := c.sc.submit(rctx, c.cfg.Shards[shard], path, body)
			if err != nil {
				if r.Context().Err() != nil {
					return // client gone; nothing to answer
				}
				c.tracer.Record(sc, "route", attempt, time.Now(),
					obs.KV("shard", c.cfg.Shards[shard]), obs.KV("kind", kind), obs.KV("outcome", "shard-failed"))
				c.shardFailed(shard, "submit", err)
				continue
			}
			if sr.status == nil {
				// Application-level answer (429/400/404/...): verbatim.
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(sr.code)
				w.Write(sr.body)
				return
			}
			c.tracer.Record(sc, "route", attempt, time.Now(),
				obs.KV("shard", c.cfg.Shards[shard]), obs.KV("kind", kind),
				obs.KV("remote", sr.status.ID), obs.KV("cached", fmt.Sprint(sr.code == http.StatusOK)))
			j := &cjob{kind: kind, path: path, key: key, body: body,
				shard: shard, remoteID: sr.status.ID,
				sc: sc, parentSpan: clientSC.Span, submitted: submitted}
			st := *sr.status
			if sr.code == http.StatusOK { // shard cache hit: already terminal
				j.result = &st
				c.m.cacheHits.inc(c.cfg.Shards[shard])
			} else {
				c.m.routed.inc(c.cfg.Shards[shard])
			}
			c.addJob(j)
			st.ID = j.id
			st.Key = key
			if j.result != nil {
				j.result.ID = j.id
				j.result.Key = key
				c.closeRootSpan(j, j.result.State) // born terminal: shard cache hit
			} else {
				c.flight.Recordf("job.routed", j.id, sc.Trace.String(), "%s -> %s (%s)",
					kind, c.cfg.Shards[shard], j.remoteID)
			}
			c.log.Info("job routed", "job", j.id, "kind", kind,
				"shard", c.cfg.Shards[shard], "remote", j.remoteID, "cached", sr.code == http.StatusOK,
				"trace", sc.Trace.String())
			if streamRequested(r) {
				c.streamProxy(w, r, j, 0)
				return
			}
			writeJSON(w, sr.code, st)
			return
		}
		c.m.rejected.Add(1)
		c.flight.Record("job.rejected", "", sc.Trace.String(), kind)
		if tried == 0 {
			writeError(w, http.StatusServiceUnavailable, "%v (of %d)", errNoHealthyShard, len(c.cfg.Shards))
			return
		}
		writeError(w, http.StatusBadGateway, "every healthy shard failed to accept the job")
	}
}

// embedded delegates a request to the embedded host: autotuning
// searches (whose candidate evaluations go back through the cluster
// surface and are routed to shards like any other eval submit) and the
// trace pipeline (uploads land in the embedded host's trace store;
// analysis jobs run there with per-chunk work fanned out across the
// shards by chunk content-address).
func (c *Coordinator) embedded(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	c.tuner.Handler().ServeHTTP(w, r)
}

// delegated dispatches a /v1/jobs request by ID namespace: routed jobs
// carry "cjob-" IDs, everything else belongs to the embedded autotune
// host and is answered by it directly.
func (c *Coordinator) delegated(w http.ResponseWriter, r *http.Request) bool {
	if strings.HasPrefix(r.PathValue("id"), "cjob-") {
		return false
	}
	c.tuner.Handler().ServeHTTP(w, r)
	return true
}

// addJob registers a routed job under a coordinator-namespaced ID
// ("cjob-N", disjoint from the workers' "job-N") and evicts the
// oldest mappings beyond the bound.
func (c *Coordinator) addJob(j *cjob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	j.id = fmt.Sprintf("cjob-%d", c.seq)
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	for len(c.order) > c.cfg.MaxJobs {
		delete(c.jobs, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *Coordinator) job(id string) *cjob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// shardFailed demotes a shard after a call it failed to answer.
func (c *Coordinator) shardFailed(shard int, op string, err error) {
	c.m.shardErrors.inc(c.cfg.Shards[shard])
	c.flight.Recordf("shard.error", "", "", "%s %s: %v", c.cfg.Shards[shard], op, err)
	c.log.Warn("shard call failed", "shard", c.cfg.Shards[shard], "op", op, "err", err)
	c.prober.markDown(shard)
}

// setResult records a terminal status (ID/key already rewritten).
func (c *Coordinator) setResult(j *cjob, st server.JobStatus) {
	j.mu.Lock()
	first := j.result == nil
	if first {
		j.result = &st
	}
	j.mu.Unlock()
	if !first {
		return
	}
	c.closeRootSpan(j, st.State)
	if st.State == "done" {
		c.m.jobsDone.Add(1)
	}
}

// closeRootSpan emits the routed job's root span, spanning submit to
// terminal status. Route/requeue child spans nest under it, so one
// trace shows the job's full history across every shard it touched.
func (c *Coordinator) closeRootSpan(j *cjob, state string) {
	c.tracer.Add(obs.Span{Trace: j.sc.Trace, ID: j.sc.Span, Parent: j.parentSpan, Name: "job",
		Start: j.submitted.UnixNano(), End: time.Now().UnixNano(),
		Attrs: []obs.Attr{obs.KV("kind", j.kind), obs.KV("job", j.id), obs.KV("state", state)}})
	c.flight.Record("job."+state, j.id, j.sc.Trace.String(), j.kind)
}

// rewrite maps a shard's job status into the coordinator's namespace.
func (j *cjob) rewrite(st server.JobStatus) server.JobStatus {
	st.ID = j.id
	st.Key = j.key
	return st
}

// requeue reroutes a job off a lost shard to the next healthy ring
// position, resubmitting the original body verbatim. The failover
// target's local cache may already hold the result (it ran the key
// before, or the job finished just before the shard died and another
// client warmed it) — then the requeue resolves to a terminal status
// immediately. 429s from the target are absorbed with the shared
// backoff schedule inside ctx's budget. Safe to call from concurrent
// proxies: only the caller that still observes the failed placement
// moves the job.
func (c *Coordinator) requeue(ctx context.Context, j *cjob, failedShard int, failedRemoteID string) error {
	j.routeMu.Lock()
	defer j.routeMu.Unlock()
	shard, remoteID, res := j.placement()
	if res != nil {
		return nil // finished before we got here
	}
	if shard != failedShard || remoteID != failedRemoteID {
		return nil // a concurrent proxy already moved it
	}
	j.mu.Lock()
	over := j.requeues >= c.cfg.MaxRequeues
	if !over {
		j.requeues++
	}
	j.mu.Unlock()
	if over {
		return fmt.Errorf("job %s exceeded %d requeues", j.id, c.cfg.MaxRequeues)
	}

	// The resubmit continues the job's trace: the replacement shard's
	// spans land under the same trace ID as the lost shard's, so the
	// merged span tree shows the whole failover.
	ctx = obs.ContextWithSpan(ctx, j.sc)
	rqStart := time.Now()
	for _, target := range c.ring.Sequence(j.key) {
		if target == failedShard || !c.prober.healthy(target) {
			continue
		}
		for attempt := 0; ; attempt++ {
			sr, err := c.sc.submit(ctx, c.cfg.Shards[target], j.path, j.body)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.shardFailed(target, "requeue", err)
				break // next shard
			}
			switch {
			case sr.status != nil && sr.code == http.StatusAccepted:
				j.mu.Lock()
				j.shard, j.remoteID = target, sr.status.ID
				j.mu.Unlock()
				c.m.requeued.inc(c.cfg.Shards[failedShard])
				c.m.routed.inc(c.cfg.Shards[target])
				c.tracer.Record(j.sc, "requeue", rqStart, time.Now(),
					obs.KV("from", c.cfg.Shards[failedShard]), obs.KV("to", c.cfg.Shards[target]),
					obs.KV("remote", sr.status.ID))
				c.flight.Recordf("job.requeued", j.id, j.sc.Trace.String(), "%s -> %s (%s)",
					c.cfg.Shards[failedShard], c.cfg.Shards[target], sr.status.ID)
				c.log.Warn("job requeued", "job", j.id,
					"from", c.cfg.Shards[failedShard], "to", c.cfg.Shards[target], "remote", sr.status.ID)
				return nil
			case sr.status != nil && sr.code == http.StatusOK:
				st := j.rewrite(*sr.status)
				c.m.requeued.inc(c.cfg.Shards[failedShard])
				c.m.cacheHits.inc(c.cfg.Shards[target])
				c.tracer.Record(j.sc, "requeue", rqStart, time.Now(),
					obs.KV("from", c.cfg.Shards[failedShard]), obs.KV("to", c.cfg.Shards[target]),
					obs.KV("outcome", "cached"))
				c.flight.Recordf("job.requeued", j.id, j.sc.Trace.String(), "%s -> %s (cached result)",
					c.cfg.Shards[failedShard], c.cfg.Shards[target])
				c.setResult(j, st)
				c.log.Warn("job requeued to cached result", "job", j.id,
					"from", c.cfg.Shards[failedShard], "to", c.cfg.Shards[target])
				return nil
			case sr.code == http.StatusTooManyRequests:
				if attempt >= 8 {
					return fmt.Errorf("shard %s queue stayed full through %d retries", c.cfg.Shards[target], attempt)
				}
				if err := c.sc.bo.Sleep(ctx, attempt); err != nil {
					return err
				}
			default:
				return fmt.Errorf("shard %s rejected requeued job: %d %s",
					c.cfg.Shards[target], sr.code, bytes.TrimSpace(sr.body))
			}
		}
	}
	return errNoHealthyShard
}

func (c *Coordinator) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if c.delegated(w, r) {
		return
	}
	j := c.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	shard, remoteID, res := j.placement()
	if res != nil {
		writeJSON(w, http.StatusOK, *res)
		return
	}
	sr, err := c.sc.jobStatus(r.Context(), c.cfg.Shards[shard], remoteID)
	lost := false
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		c.shardFailed(shard, "status", err)
		lost = true
	} else if sr.code == http.StatusNotFound {
		lost = true // worker restarted and lost its jobs
	}
	if lost {
		if err := c.requeue(r.Context(), j, shard, remoteID); err != nil {
			writeError(w, http.StatusBadGateway, "shard lost and requeue failed: %v", err)
			return
		}
		if _, _, res := j.placement(); res != nil {
			writeJSON(w, http.StatusOK, *res)
			return
		}
		writeJSON(w, http.StatusOK, server.JobStatus{ID: j.id, Kind: j.kind, Key: j.key, State: "queued"})
		return
	}
	if sr.status == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(sr.code)
		w.Write(sr.body)
		return
	}
	st := j.rewrite(*sr.status)
	switch st.State {
	case "done", "failed", "cancelled":
		c.setResult(j, st)
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if c.delegated(w, r) {
		return
	}
	j := c.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	shard, remoteID, res := j.placement()
	if res != nil {
		writeJSON(w, http.StatusOK, *res)
		return
	}
	sr, err := c.sc.cancel(r.Context(), c.cfg.Shards[shard], remoteID)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		// A dead shard's job is dead with it; report it cancelled
		// rather than requeuing work nobody wants anymore.
		c.shardFailed(shard, "cancel", err)
		st := server.JobStatus{ID: j.id, Kind: j.kind, Key: j.key, State: "cancelled"}
		c.setResult(j, st)
		writeJSON(w, http.StatusOK, st)
		return
	}
	if sr.status == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(sr.code)
		w.Write(sr.body)
		return
	}
	writeJSON(w, sr.code, j.rewrite(*sr.status))
}

// artifactHandler proxies a job's telemetry artifact from its shard.
func (c *Coordinator) artifactHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.delegated(w, r) {
			return
		}
		j := c.job(r.PathValue("id"))
		if j == nil {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		shard, remoteID, _ := j.placement()
		sr, err := c.sc.do(r.Context(), "GET", c.cfg.Shards[shard]+"/v1/jobs/"+remoteID+"/"+name, nil)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			c.shardFailed(shard, "artifact", err)
			writeError(w, http.StatusBadGateway, "shard %s unreachable: %v", c.cfg.Shards[shard], err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(sr.code)
		w.Write(sr.body)
	}
}

// passthrough proxies a read-only listing to the first healthy shard:
// every worker runs the same binary, so any of them can answer.
func (c *Coordinator) passthrough(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for shard := range c.cfg.Shards {
			if !c.prober.healthy(shard) {
				continue
			}
			sr, err := c.sc.do(r.Context(), "GET", c.cfg.Shards[shard]+path, nil)
			if err != nil {
				if r.Context().Err() != nil {
					return
				}
				c.shardFailed(shard, "passthrough", err)
				continue
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(sr.code)
			w.Write(sr.body)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v (of %d)", errNoHealthyShard, len(c.cfg.Shards))
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	n := c.prober.healthyCount()
	if n == 0 {
		http.Error(w, "no healthy shards", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok (%d/%d shards healthy)\n", n, len(c.cfg.Shards))
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.renderMetrics(w)
	// Then the federated daemon families (prestored_*): the embedded
	// host and every healthy worker shard, each sample relabeled with
	// its origin — name-disjoint from the coordinator's own
	// prestored_coordinator_* set, so one scrape covers the fleet.
	c.writeFederated(r.Context(), w)
}

// handleJobSpans serves a routed job's merged span timeline: the
// coordinator's own spans (root, queue routing, requeues) plus the
// owning shard's spans for the same trace, fetched live. The shard
// fetch is best-effort — a dead shard degrades the artifact to the
// coordinator's side of the story rather than failing the request.
func (c *Coordinator) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	if c.delegated(w, r) {
		return
	}
	j := c.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	spans, dropped := c.spans.Spans(j.sc.Trace)
	shard, remoteID, _ := j.placement()
	if sr, err := c.sc.do(r.Context(), "GET", c.cfg.Shards[shard]+"/v1/jobs/"+remoteID+"/spans", nil); err == nil && sr.code == http.StatusOK {
		var remote struct {
			OtherData struct {
				Dropped int `json:"droppedSpans"`
			} `json:"otherData"`
			Spans []obs.Span `json:"spans"`
		}
		if json.Unmarshal(sr.body, &remote) == nil {
			spans = append(spans, remote.Spans...)
			dropped += remote.OtherData.Dropped
		}
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteSpanTimeline(w, spans, dropped)
}

// handleFlightRecorder dumps the coordinator process's flight recorder
// (shared with the embedded host, so routing decisions, shard health
// transitions and embedded-job events interleave in one timeline).
func (c *Coordinator) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	c.flight.WriteJSON(w)
}

// ---- stream proxying ----

// streamEvent mirrors the worker daemon's NDJSON stream line.
type streamEvent struct {
	Event string            `json:"event"`
	Data  string            `json:"data,omitempty"`
	Job   *server.JobStatus `json:"job,omitempty"`
}

func (c *Coordinator) handleStreamJob(w http.ResponseWriter, r *http.Request) {
	if c.delegated(w, r) {
		return
	}
	j := c.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	off, err := parseOffset(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.streamProxy(w, r, j, off)
}

// streamProxy follows a job's stream across shard failures. It tracks
// the byte offset already forwarded to the client; every (re)attach
// replays from that offset, so the client sees each output byte
// exactly once no matter how many times the job moves. A broken
// stream first reattaches to the same shard when it still looks
// healthy (a transient drop must not forfeit its cache placement);
// a dead or amnesiac shard triggers a requeue.
func (c *Coordinator) streamProxy(w http.ResponseWriter, r *http.Request, j *cjob, clientOff int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)
	c.m.streamsUp.Add(1)
	defer c.m.streamsUp.Add(-1)

	forwarded := clientOff
	sentStatus := false
	reconnects := 0
	for {
		if r.Context().Err() != nil {
			return
		}
		shard, remoteID, res := j.placement()
		if res != nil {
			c.emitTerminal(enc, flush, *res, forwarded, sentStatus)
			return
		}

		body, err := c.sc.openStream(r.Context(), c.cfg.Shards[shard], remoteID, forwarded)
		progressed := false
		if err == nil {
			var done bool
			done, progressed = c.copyStream(enc, flush, j, body, &forwarded, &sentStatus, r.Context())
			body.Close()
			if done {
				return
			}
		}
		if r.Context().Err() != nil {
			return
		}
		if progressed {
			reconnects = 0
		}

		// The stream broke (or never attached). Decide: same-shard
		// reconnect, or requeue.
		var sse *streamStatusError
		lostJob := errors.As(err, &sse) && sse.code == http.StatusNotFound
		sameShardOK := !lostJob && reconnects < 3 &&
			c.sc.healthy(r.Context(), c.cfg.Shards[shard], c.proberTimeout())
		if sameShardOK {
			reconnects++
			if c.sc.bo.Sleep(r.Context(), reconnects-1) != nil {
				return
			}
			continue
		}
		if !lostJob {
			c.shardFailed(shard, "stream", err)
		}
		if rqErr := c.requeue(r.Context(), j, shard, remoteID); rqErr != nil {
			if r.Context().Err() != nil {
				return
			}
			st := server.JobStatus{ID: j.id, Kind: j.kind, Key: j.key, State: "failed",
				Error:  rqErr.Error(),
				Result: &bench.Result{ID: j.kind, Title: "lost to shard failure", Err: rqErr.Error()}}
			c.setResult(j, st)
			enc.Encode(streamEvent{Event: "done", Job: &st})
			flush()
			return
		}
		reconnects = 0
	}
}

func (c *Coordinator) proberTimeout() time.Duration {
	if c.cfg.ProbeTimeout > 0 {
		return c.cfg.ProbeTimeout
	}
	return 2 * time.Second
}

// copyStream forwards one attached shard stream to the client until it
// ends. Returns done=true when the terminal event was delivered, and
// whether any output bytes were forwarded (progress resets the
// reconnect budget). Duplicate status events from reattaches are
// suppressed; output offsets are accounted so reattaches never repeat
// a byte.
func (c *Coordinator) copyStream(enc *json.Encoder, flush func(), j *cjob,
	body io.Reader, forwarded *int, sentStatus *bool, ctx context.Context) (done, progressed bool) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false, progressed // treat like transport loss
		}
		switch ev.Event {
		case "status":
			if *sentStatus {
				continue
			}
			if ev.Job != nil {
				st := j.rewrite(*ev.Job)
				ev.Job = &st
			}
			if enc.Encode(ev) != nil {
				return true, progressed // client gone: ctx will end the proxy
			}
			*sentStatus = true
			flush()
		case "output":
			*forwarded += len(ev.Data)
			progressed = true
			if enc.Encode(ev) != nil {
				return true, progressed
			}
			flush()
		case "done":
			if ev.Job == nil {
				return false, progressed
			}
			st := j.rewrite(*ev.Job)
			c.setResult(j, st)
			ev.Job = &st
			enc.Encode(ev)
			flush()
			return true, progressed
		}
		if ctx.Err() != nil {
			return true, progressed
		}
	}
	return false, progressed
}

// emitTerminal serves a stream request for a job whose terminal status
// the coordinator already holds (shard cache hit, or a requeue that
// resolved to a cached result): replay the remaining output bytes and
// the done event. Deterministic output makes the suffix exact.
func (c *Coordinator) emitTerminal(enc *json.Encoder, flush func(),
	st server.JobStatus, forwarded int, sentStatus bool) {
	if !sentStatus {
		if enc.Encode(streamEvent{Event: "status", Job: &st}) != nil {
			return
		}
		flush()
	}
	if st.Result != nil && forwarded < len(st.Result.Output) {
		if enc.Encode(streamEvent{Event: "output", Data: st.Result.Output[forwarded:]}) != nil {
			return
		}
		flush()
	}
	enc.Encode(streamEvent{Event: "done", Job: &st})
	flush()
}
