package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestRingStablePlacement(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(shards, 0)
	r2 := NewRing(shards, 0)
	for _, k := range testKeys(200) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs between identical rings: %d vs %d", k, r1.Owner(k), r2.Owner(k))
		}
		if got := r1.Owner(k); got != r1.Sequence(k)[0] {
			t.Fatalf("Owner(%q) = %d but Sequence starts with %d", k, got, r1.Sequence(k)[0])
		}
	}
}

func TestRingDistribution(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(shards, 0)
	counts := make([]int, len(shards))
	const n = 4000
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	for i, c := range counts {
		// With 128 vnodes per shard the split stays well within 2× of
		// even; the guard is loose to keep the test hash-stable.
		if c < n/len(shards)/2 || c > n*2/len(shards) {
			t.Errorf("shard %d owns %d of %d keys (want roughly %d)", i, c, n, n/len(shards))
		}
	}
}

// TestRingRemovalMovesOnlyDisplacedKeys is the consistent-hashing
// contract the distributed cache depends on: dropping a shard must not
// move any key that shard did not own.
func TestRingRemovalMovesOnlyDisplacedKeys(t *testing.T) {
	full := []string{"http://a", "http://b", "http://c"}
	without := []string{"http://a", "http://c"} // drop b
	rFull := NewRing(full, 0)
	rLess := NewRing(without, 0)
	moved, displaced := 0, 0
	for _, k := range testKeys(1000) {
		ownerFull := full[rFull.Owner(k)]
		ownerLess := without[rLess.Owner(k)]
		if ownerFull == "http://b" {
			displaced++
			// A displaced key must land on its next-on-ring shard:
			// the first non-b entry of the full ring's sequence.
			var want string
			for _, s := range rFull.Sequence(k) {
				if full[s] != "http://b" {
					want = full[s]
					break
				}
			}
			if ownerLess != want {
				t.Fatalf("displaced key %q moved to %s, want next-on-ring %s", k, ownerLess, want)
			}
			continue
		}
		if ownerFull != ownerLess {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed shard changed owner", moved)
	}
	if displaced == 0 {
		t.Fatal("test vacuous: no key was owned by the removed shard")
	}
}

func TestRingSequenceCoversAllShards(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r := NewRing(shards, 0)
	for _, k := range testKeys(50) {
		seq := r.Sequence(k)
		if len(seq) != len(shards) {
			t.Fatalf("Sequence(%q) = %v, want all %d shards", k, seq, len(shards))
		}
		seen := map[int]bool{}
		for _, s := range seq {
			if seen[s] {
				t.Fatalf("Sequence(%q) repeats shard %d: %v", k, s, seq)
			}
			seen[s] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != -1 {
		t.Fatalf("empty ring Owner = %d, want -1", got)
	}
	if seq := r.Sequence("k"); seq != nil {
		t.Fatalf("empty ring Sequence = %v, want nil", seq)
	}
}
