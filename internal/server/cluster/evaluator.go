package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"prestores/internal/scenario"
	"prestores/internal/server"
	"prestores/internal/telemetry"
)

// clusterEvaluator is the autotune measurement backend the coordinator
// injects into its embedded autotune host: every candidate evaluation
// and telemetry probe becomes an in-process round trip against the
// coordinator's own HTTP surface, so it inherits consistent-hash
// routing, the shards' distributed result cache, shard-loss requeues
// and backoff for free. Identical candidates — the hill climb revisits
// plans across restarts, and concurrent searches overlap — always land
// on the shard already holding the cached metrics.
type clusterEvaluator struct {
	c *Coordinator
}

// Eval measures one candidate plan: POST /v1/eval on the cluster
// surface, streamed so the terminal status arrives without polling.
// The eval job's output is the metrics map as canonical JSON.
func (e clusterEvaluator) Eval(ctx context.Context, sp scenario.Spec, quick bool) (scenario.Metrics, error) {
	st, err := e.await(ctx, "/v1/eval?stream=1", sp, quick)
	if err != nil {
		return nil, err
	}
	var m scenario.Metrics
	if err := json.Unmarshal([]byte(st.Result.Output), &m); err != nil {
		return nil, fmt.Errorf("cluster eval %s: bad metrics payload: %v", st.ID, err)
	}
	return m, nil
}

// Probe runs the cold telemetry probe as a regular scenario job (the
// probe spec carries its telemetry block) and decodes the shard's
// linereport artifact. The shard caps the artifact at the same line
// count Local.Probe uses, so both backends seed identically.
func (e clusterEvaluator) Probe(ctx context.Context, sp scenario.Spec, quick bool) (*telemetry.LineReport, error) {
	st, err := e.await(ctx, "/v1/scenarios?stream=1", sp, quick)
	if err != nil {
		return nil, err
	}
	rec := e.roundTrip(ctx, "GET", "/v1/jobs/"+st.ID+"/linereport", nil)
	if rec.code != http.StatusOK {
		return nil, fmt.Errorf("cluster probe %s: linereport fetch returned %d: %s",
			st.ID, rec.code, bytes.TrimSpace(rec.body.Bytes()))
	}
	return telemetry.DecodeLineReport(rec.body.Bytes())
}

// await submits a spec to a streaming cluster endpoint and blocks until
// its terminal stream event, returning the finished job status.
func (e clusterEvaluator) await(ctx context.Context, path string, sp scenario.Spec, quick bool) (*server.JobStatus, error) {
	canon, err := sp.Canonical()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(struct {
		Spec  json.RawMessage `json:"spec"`
		Quick bool            `json:"quick,omitempty"`
	}{Spec: canon, Quick: quick})
	if err != nil {
		return nil, err
	}
	rec := e.roundTrip(ctx, "POST", path, body)
	if rec.code != http.StatusOK {
		return nil, fmt.Errorf("cluster submit %s returned %d: %s",
			path, rec.code, bytes.TrimSpace(rec.body.Bytes()))
	}

	var final *server.JobStatus
	sc := bufio.NewScanner(&rec.body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev streamEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		if ev.Event == "done" && ev.Job != nil {
			final = ev.Job
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if final == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cluster submit %s: stream ended without a done event", path)
	}
	if final.State != "done" || final.Result == nil {
		msg := final.Error
		if msg == "" && final.Result != nil {
			msg = final.Result.Err
		}
		return nil, fmt.Errorf("cluster job %s %s: %s", final.ID, final.State, msg)
	}
	return final, nil
}

// roundTrip serves one request against the coordinator's mux without a
// socket. Responses are buffered whole: streams block until the job's
// terminal event, which is exactly the rendezvous await needs.
func (e clusterEvaluator) roundTrip(ctx context.Context, method, path string, body []byte) *responseRecorder {
	var rd *strings.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequestWithContext(ctx, method, path, rd)
	if err != nil {
		rec := newRecorder()
		rec.code = http.StatusInternalServerError
		fmt.Fprintf(&rec.body, "building request: %v", err)
		return rec
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := newRecorder()
	e.c.mux.ServeHTTP(rec, req)
	return rec
}

// responseRecorder is a minimal buffering http.ResponseWriter for
// in-process round trips. Flush is a no-op — everything is delivered
// when the handler returns.
type responseRecorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *responseRecorder {
	return &responseRecorder{code: http.StatusOK, header: http.Header{}}
}

func (r *responseRecorder) Header() http.Header         { return r.header }
func (r *responseRecorder) WriteHeader(code int)        { r.code = code }
func (r *responseRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }
func (r *responseRecorder) Flush()                      {}
