package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"prestores/internal/obs"
	"prestores/internal/server"
)

// shardClient is the coordinator's HTTP client for worker daemons: a
// timed client for unary calls (submit, status, cancel, listings — a
// hung shard must not hang the coordinator), an untimed one for
// long-lived NDJSON streams, and the shared backoff schedule for
// absorbing a shard's 429s during a requeue.
type shardClient struct {
	api    *http.Client
	stream *http.Client
	bo     Backoff
}

func newShardClient(requestTimeout time.Duration, bo Backoff, transport http.RoundTripper) *shardClient {
	if requestTimeout <= 0 {
		requestTimeout = 30 * time.Second
	}
	return &shardClient{
		api:    &http.Client{Timeout: requestTimeout, Transport: transport},
		stream: &http.Client{Transport: transport},
		bo:     bo,
	}
}

// shardResponse is a worker's answer to a proxied unary call: the
// status code and raw body (passed through to the client verbatim on
// application-level errors), plus the decoded job status when the
// call produced one (200/202).
type shardResponse struct {
	code   int
	body   []byte
	status *server.JobStatus
}

// do performs one unary call against a shard. A returned error means
// the shard did not answer at all (connect failure, timeout) — the
// signal the coordinator treats as "shard down". Any HTTP response,
// including 4xx/5xx, is returned as a shardResponse.
func (sc *shardClient) do(ctx context.Context, method, url string, body []byte) (*shardResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the coordinator's span context so the shard's job joins
	// the same trace.
	obs.InjectContext(ctx, req.Header)
	resp, err := sc.api.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return nil, err
	}
	sr := &shardResponse{code: resp.StatusCode, body: data}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var st server.JobStatus
		if jerr := json.Unmarshal(data, &st); jerr == nil {
			sr.status = &st
		}
	}
	return sr, nil
}

// submit posts a job body to a shard's submit endpoint.
func (sc *shardClient) submit(ctx context.Context, shardURL, path string, body []byte) (*shardResponse, error) {
	return sc.do(ctx, "POST", shardURL+path, body)
}

// jobStatus fetches a job's status from its owning shard.
func (sc *shardClient) jobStatus(ctx context.Context, shardURL, remoteID string) (*shardResponse, error) {
	return sc.do(ctx, "GET", shardURL+"/v1/jobs/"+remoteID, nil)
}

// cancel DELETEs a job on its owning shard.
func (sc *shardClient) cancel(ctx context.Context, shardURL, remoteID string) (*shardResponse, error) {
	return sc.do(ctx, "DELETE", shardURL+"/v1/jobs/"+remoteID, nil)
}

// openStream attaches to a job's NDJSON stream on its shard, replaying
// from the given byte offset. The response body is the live stream;
// the caller owns closing it. A non-200 answer is returned as an
// error carrying the status code so the caller can distinguish "job
// unknown on this shard" (a restarted worker lost its jobs — requeue)
// from transport loss.
func (sc *shardClient) openStream(ctx context.Context, shardURL, remoteID string, offset int) (io.ReadCloser, error) {
	url := shardURL + "/v1/jobs/" + remoteID + "/stream"
	if offset > 0 {
		url += "?offset=" + strconv.Itoa(offset)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	obs.InjectContext(ctx, req.Header)
	resp, err := sc.stream.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &streamStatusError{code: resp.StatusCode, body: string(data)}
	}
	return resp.Body, nil
}

// streamStatusError is a non-200 answer to a stream attach.
type streamStatusError struct {
	code int
	body string
}

func (e *streamStatusError) Error() string {
	return fmt.Sprintf("shard returned %d to stream attach: %s", e.code, e.body)
}

// postChunk sends one framed chunk-analysis request to a shard. Like
// do, a returned error means the shard did not answer at all; any HTTP
// response comes back as (body, code). The response limit is sized for
// a pass-2 partial of a dense chunk, not the unary JSON cap.
func (sc *shardClient) postChunk(ctx context.Context, shardURL string, body []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", shardURL+"/v1/analyses/chunks", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	obs.InjectContext(ctx, req.Header)
	resp, err := sc.api.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		return nil, 0, err
	}
	return data, resp.StatusCode, nil
}

// healthy probes a shard's /healthz with its own short deadline.
func (sc *shardClient) healthy(ctx context.Context, shardURL string, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", shardURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := sc.api.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
