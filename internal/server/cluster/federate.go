package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"prestores/internal/obs"
)

// Metrics federation: the coordinator's /metrics re-exports every
// daemon-level family (prestored_*) from the whole fleet — the
// embedded host plus each healthy worker shard — with a shard label
// identifying the origin ("self" for the embedded host, the shard's
// base URL otherwise). Families are merged by name so HELP/TYPE appear
// once per family with all origins' series beneath them, which keeps
// the combined exposition valid: Prometheus rejects duplicate family
// declarations but is happy with label-disjoint series.
//
// Each source is parsed through the strict promtext parser before
// re-emission; a shard whose exposition fails to fetch or parse is
// skipped (and counted in prestored_coordinator_federation_errors_total)
// rather than corrupting the combined page.

// writeFederated scrapes all sources and writes the merged, relabeled
// daemon families to w.
func (c *Coordinator) writeFederated(ctx context.Context, w io.Writer) {
	type source struct {
		label string
		text  []byte
	}
	var sources []source

	// The embedded host, scraped in process.
	rec := newRecorder()
	if req, err := http.NewRequestWithContext(ctx, "GET", "/metrics", nil); err == nil {
		c.tuner.Handler().ServeHTTP(rec, req)
		if rec.code == http.StatusOK {
			sources = append(sources, source{"self", rec.body.Bytes()})
		} else {
			c.m.scrapeErrors.inc("self")
		}
	}

	// Every healthy worker shard, scraped over HTTP. Unhealthy shards
	// are skipped silently — the prober already accounts for them and a
	// scrape would only burn the request timeout.
	for i, url := range c.cfg.Shards {
		if !c.prober.healthy(i) {
			continue
		}
		sr, err := c.sc.do(ctx, "GET", url+"/metrics", nil)
		if err != nil || sr.code != http.StatusOK {
			c.m.scrapeErrors.inc(url)
			continue
		}
		sources = append(sources, source{url, sr.body})
	}

	merged := map[string]*obs.Family{}
	var order []string
	for _, src := range sources {
		fams, err := obs.ParseMetrics(bytes.NewReader(src.text))
		if err != nil {
			c.m.scrapeErrors.inc(src.label)
			continue
		}
		for _, f := range fams {
			mf := merged[f.Name]
			if mf == nil {
				mf = &obs.Family{Name: f.Name, Help: f.Help, Type: f.Type}
				merged[f.Name] = mf
				order = append(order, f.Name)
			}
			for _, s := range f.Samples {
				mf.Samples = append(mf.Samples, s.WithLabel("shard", src.label))
			}
		}
	}

	for _, name := range order {
		f := merged[name]
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		}
		if f.Type != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			obs.WriteSample(w, s)
		}
	}
}
