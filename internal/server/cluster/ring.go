package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over shard base URLs. Each shard
// contributes Replicas virtual points; a key is owned by the shard
// whose point follows the key's hash clockwise. Because a shard's
// points depend only on its own URL, adding or removing a shard moves
// only the keys adjacent to that shard's points — every other key
// keeps its owner, which is what keeps the distributed result cache
// warm across fleet changes.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is the virtual-node count per shard: enough to keep
// the load split within a few percent of even for small fleets.
const defaultReplicas = 128

// NewRing builds a ring over the given shard base URLs. replicas <= 0
// means defaultReplicas.
func NewRing(shards []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{shards: append([]string(nil), shards...)}
	for i, s := range shards {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(s + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash maps a string to a ring position. SHA-256 (truncated) keeps
// placement stable across processes and Go versions, which matters
// because the distributed cache's warmth depends on every coordinator
// instance agreeing on key→shard.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Shards returns the shard base URLs in construction order.
func (r *Ring) Shards() []string { return r.shards }

// Sequence returns every shard index in preference order for key: the
// owner first, then each successive distinct shard walking the ring.
// The coordinator routes to the first healthy entry, which is what
// makes failover placement stable too — every key displaced from a
// dead shard lands on that key's unique next-on-ring shard.
func (r *Ring) Sequence(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]int, 0, len(r.shards))
	seen := make([]bool, len(r.shards))
	for i := 0; i < len(r.points) && len(seq) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			seq = append(seq, p.shard)
		}
	}
	return seq
}

// Owner returns the owning shard index for key (-1 on an empty ring).
func (r *Ring) Owner(key string) int {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return -1
	}
	return seq[0]
}
