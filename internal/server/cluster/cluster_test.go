package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prestores/internal/bench"
	"prestores/internal/server"
)

// killSwitch simulates a worker daemon dying without unbinding its
// port: once flipped, every new request is aborted mid-connection.
// Combined with CloseClientConnections it severs live streams too.
type killSwitch struct {
	dead atomic.Bool
	h    http.Handler
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	k.h.ServeHTTP(w, r)
}

// shardFixture is one worker daemon under test.
type shardFixture struct {
	srv  *server.Server
	ts   *httptest.Server
	kill *killSwitch
	runs atomic.Int64 // experiments executed on this shard
}

func (f *shardFixture) die() {
	f.kill.dead.Store(true)
	f.ts.CloseClientConnections()
}

// newCluster starts n worker shards sharing the experiment set and a
// coordinator over them, all torn down via t.Cleanup.
func newCluster(t *testing.T, n int, exps ...bench.Experiment) (*Coordinator, *httptest.Server, []*shardFixture) {
	t.Helper()
	byID := map[string]bench.Experiment{}
	for _, e := range exps {
		byID[e.ID] = e
	}
	shards := make([]*shardFixture, n)
	urls := make([]string, n)
	for i := range shards {
		f := &shardFixture{}
		lookup := func(id string) (bench.Experiment, bool) {
			e, ok := byID[id]
			if !ok {
				return bench.Experiment{}, false
			}
			orig := e.Run
			e.Run = func(ctx context.Context, w io.Writer, quick bool) {
				f.runs.Add(1)
				orig(ctx, w, quick)
			}
			return e, true
		}
		f.srv = server.New(server.Config{Workers: 2, Lookup: lookup})
		f.kill = &killSwitch{h: f.srv.Handler()}
		f.ts = httptest.NewServer(f.kill)
		shards[i] = f
		urls[i] = f.ts.URL
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			f.srv.Shutdown(ctx)
			f.kill.dead.Store(true)
			f.ts.Close()
		})
	}
	coord, err := New(Config{
		Shards:         urls,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   time.Second,
		RequestTimeout: 5 * time.Second,
		Backoff:        Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		coord.Shutdown(context.Background())
		cts.Close()
	})
	return coord, cts, shards
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func submitExp(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	code, data := postJSON(t, base+"/v1/experiments", map[string]any{"id": id, "quick": true})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit %s: status %d: %s", id, code, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFinal(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	// Generous upper bound only: the race detector slows the autotune
	// search well past what the plain tests need.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func synth(id string) bench.Experiment {
	return bench.Experiment{ID: id, Title: "synthetic " + id, Paper: "n/a",
		Run: func(_ context.Context, w io.Writer, quick bool) {
			fmt.Fprintf(w, "%s body quick=%v\n", id, quick)
		}}
}

// TestClusterRoutingAndDistributedCache proves the two cache halves of
// the tentpole: identical submits land on the same shard (the second
// is answered from that shard's cache without a second execution), and
// distinct keys spread across the fleet.
func TestClusterRoutingAndDistributedCache(t *testing.T) {
	var exps []bench.Experiment
	for i := 0; i < 16; i++ {
		exps = append(exps, synth(fmt.Sprintf("e%d", i)))
	}
	_, cts, shards := newCluster(t, 2, exps...)

	// Same body twice: second submit must be a distributed cache hit.
	first := submitExp(t, cts.URL, "e0")
	st := waitFinal(t, cts.URL, first.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("first run: %+v", st)
	}
	code, data := postJSON(t, cts.URL+"/v1/experiments", map[string]any{"id": "e0", "quick": true})
	if code != http.StatusOK {
		t.Fatalf("repeat submit: status %d (want 200 cached): %s", code, data)
	}
	var second server.JobStatus
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Result == nil || second.Result.Output != st.Result.Output {
		t.Fatalf("repeat submit not a cache hit with identical output: %+v", second)
	}
	if total := shards[0].runs.Load() + shards[1].runs.Load(); total != 1 {
		t.Fatalf("e0 executed %d times across the fleet, want exactly 1", total)
	}

	// Distinct keys spread over both shards.
	var ids []string
	for i := 1; i < 16; i++ {
		ids = append(ids, submitExp(t, cts.URL, fmt.Sprintf("e%d", i)).ID)
	}
	for _, id := range ids {
		if st := waitFinal(t, cts.URL, id); st.State != "done" {
			t.Fatalf("job %s: %+v", id, st)
		}
	}
	if shards[0].runs.Load() == 0 || shards[1].runs.Load() == 0 {
		t.Fatalf("16 keys all routed to one shard: %d vs %d",
			shards[0].runs.Load(), shards[1].runs.Load())
	}
}

// readEvent reads one NDJSON event from a live stream.
func readEvent(t *testing.T, br *bufio.Reader) streamEvent {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	var ev streamEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", line, err)
	}
	return ev
}

// TestClusterShardDeathRequeuesByteIdentical is the failover
// acceptance test: a job's shard dies mid-run with half the output
// already streamed to the client; the coordinator requeues the job to
// the surviving shard and the client receives exactly the bytes a
// single healthy daemon would have produced — no loss, no duplication.
func TestClusterShardDeathRequeuesByteIdentical(t *testing.T) {
	// The guarded harness prepends an experiment header; the body is
	// what Run writes.
	const fullOutput = "\n=== phoenix: dies once ===\npaper: n/a\npart1\npart2\n"
	var attempt atomic.Int64
	firstStarted := make(chan struct{})
	release := make(chan struct{})
	phoenix := bench.Experiment{ID: "phoenix", Title: "dies once", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			if attempt.Add(1) == 1 {
				fmt.Fprint(w, "part1\n")
				close(firstStarted)
				select { // parked at an iteration boundary until cancelled
				case <-ctx.Done():
				case <-release:
				}
				return
			}
			fmt.Fprint(w, "part1\npart2\n")
		}}
	coord, cts, shards := newCluster(t, 2, phoenix)
	t.Cleanup(func() { close(release) }) // unblock shard A before shutdown cleanup

	st := submitExp(t, cts.URL, "phoenix")
	resp, err := http.Get(cts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	if ev := readEvent(t, br); ev.Event != "status" {
		t.Fatalf("first event = %q, want status", ev.Event)
	}
	// Collect output until the first half has been streamed.
	var got strings.Builder
	for !strings.HasSuffix(got.String(), "part1\n") {
		ev := readEvent(t, br)
		if ev.Event != "output" {
			t.Fatalf("event = %q while waiting for part1, want output", ev.Event)
		}
		got.WriteString(ev.Data)
	}

	// Kill the shard that is running the job, mid-stream.
	<-firstStarted
	victim := 0
	if shards[1].runs.Load() > 0 {
		victim = 1
	}
	shards[victim].die()

	// The coordinator must requeue to the survivor and resume the
	// stream at the forwarded offset.
	var final *server.JobStatus
	for final == nil {
		ev := readEvent(t, br)
		switch ev.Event {
		case "output":
			got.WriteString(ev.Data)
		case "done":
			final = ev.Job
		}
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final status after failover: %+v", final)
	}
	if final.ID != st.ID {
		t.Fatalf("done event job ID = %q, want coordinator ID %q", final.ID, st.ID)
	}
	if got.String() != fullOutput {
		t.Fatalf("client received %q across failover, want %q", got.String(), fullOutput)
	}
	if final.Result.Output != fullOutput {
		t.Fatalf("result output = %q, want %q", final.Result.Output, fullOutput)
	}
	if n := attempt.Load(); n != 2 {
		t.Fatalf("experiment ran %d times, want 2 (original + requeue)", n)
	}
	if n := shards[1-victim].runs.Load(); n != 1 {
		t.Fatalf("survivor ran %d jobs, want 1", n)
	}

	// The failover shows up in the coordinator's metrics.
	mresp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mdata)
	for _, want := range []string{
		"prestored_coordinator_requeued_total",
		"prestored_coordinator_routed_total",
		"prestored_coordinator_shard_healthy",
		"prestored_coordinator_jobs_done_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("prestored_coordinator_requeued_total{shard=%q} 1", shards[victim].ts.URL)) {
		t.Errorf("requeue not attributed to dead shard:\n%s", text)
	}

	// Polling the job after failover serves the stored terminal status.
	if st := waitFinal(t, cts.URL, st.ID); st.State != "done" || st.Result.Output != fullOutput {
		t.Fatalf("status after failover: %+v", st)
	}
	_ = coord
}

// TestClusterStatusPollSurvivesShardDeath exercises the requeue path
// through GET /v1/jobs/{id} (no stream attached): the poller sees
// queued again after the loss, then done with full output.
func TestClusterStatusPollSurvivesShardDeath(t *testing.T) {
	var attempt atomic.Int64
	firstStarted := make(chan struct{})
	release := make(chan struct{})
	e := bench.Experiment{ID: "pollme", Title: "dies once", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			if attempt.Add(1) == 1 {
				close(firstStarted)
				select {
				case <-ctx.Done():
				case <-release:
				}
				return
			}
			fmt.Fprintln(w, "poll body")
		}}
	_, cts, shards := newCluster(t, 2, e)
	t.Cleanup(func() { close(release) })

	st := submitExp(t, cts.URL, "pollme")
	<-firstStarted
	victim := 0
	if shards[1].runs.Load() > 0 {
		victim = 1
	}
	shards[victim].die()

	final := waitFinal(t, cts.URL, st.ID)
	if final.State != "done" || final.Result == nil || !strings.HasSuffix(final.Result.Output, "poll body\n") {
		t.Fatalf("job after shard death: %+v", final)
	}
	if n := attempt.Load(); n != 2 {
		t.Fatalf("experiment ran %d times, want 2", n)
	}
}

func TestClusterHealthzAndPassthrough(t *testing.T) {
	_, cts, shards := newCluster(t, 2, synth("h1"))

	hz, err := http.Get(cts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || !strings.Contains(string(body), "2/2") {
		t.Fatalf("healthz: %d %q", hz.StatusCode, body)
	}

	// Listings proxy to a worker.
	lr, err := http.Get(cts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	ldata, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("listing passthrough: %d %s", lr.StatusCode, ldata)
	}

	// Unknown jobs are 404s, bad offsets 400s.
	if resp, _ := http.Get(cts.URL + "/v1/jobs/cjob-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	st := submitExp(t, cts.URL, "h1")
	waitFinal(t, cts.URL, st.ID)
	if resp, _ := http.Get(cts.URL + "/v1/jobs/" + st.ID + "/stream?offset=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset: %d", resp.StatusCode)
	}

	// With the whole fleet dead, submits are refused and health fails.
	shards[0].die()
	shards[1].die()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hz, err := http.Get(cts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hz.Body.Close()
		if hz.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz still ok with every shard dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, data := postJSON(t, cts.URL+"/v1/experiments", map[string]any{"id": "h1", "quick": true})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit with fleet down: %d %s", code, data)
	}
}

// TestClusterCancelProxies proves DELETE reaches the owning shard.
func TestClusterCancelProxies(t *testing.T) {
	started := make(chan struct{})
	e := bench.Experiment{ID: "victim", Title: "cancellable", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			close(started)
			<-ctx.Done()
		}}
	_, cts, _ := newCluster(t, 2, e)

	st := submitExp(t, cts.URL, "victim")
	<-started
	req, _ := http.NewRequest("DELETE", cts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final := waitFinal(t, cts.URL, st.ID); final.State != "cancelled" {
		t.Fatalf("cancelled job state = %q", final.State)
	}
}

func TestRouteKeyCanonicalization(t *testing.T) {
	a, err := routeKey("experiment", []byte(`{"id":"fig3","quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := routeKey("experiment", []byte("{ \"quick\": true,\n  \"id\": \"fig3\" }"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("semantically identical bodies routed differently:\n%s\n%s", a, b)
	}
	c, _ := routeKey("experiment", []byte(`{"id":"fig3","quick":false}`))
	if a == c {
		t.Error("different bodies produced the same routing key")
	}
	d, _ := routeKey("scenario", []byte(`{"id":"fig3","quick":true}`))
	if a == d {
		t.Error("different kinds produced the same routing key")
	}
	// Large integers survive canonicalization undamaged.
	big, err := routeKey("trace", []byte(`{"pm_base":1099511627776}`))
	if err != nil || big == "" {
		t.Fatalf("large-number body: %v", err)
	}
	if _, err := routeKey("experiment", []byte(`{not json`)); err == nil {
		t.Error("malformed body accepted")
	}
}
