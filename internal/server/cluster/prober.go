package cluster

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// prober tracks per-shard health. A background loop probes every
// shard's /healthz on an interval; the routing path can also mark a
// shard down immediately when a proxied call fails (markDown), so a
// dead worker stops receiving jobs at the first failure rather than
// at the next probe tick. A shard only comes back through a
// successful probe — flapping costs a probe interval, not a request.
type prober struct {
	shards   []string
	sc       *shardClient
	interval time.Duration
	timeout  time.Duration
	log      *slog.Logger
	onChange func(shard int, healthy bool)

	up   []atomic.Bool
	stop chan struct{}
	done chan struct{}
}

func newProber(shards []string, sc *shardClient, interval, timeout time.Duration,
	log *slog.Logger, onChange func(int, bool)) *prober {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	p := &prober{
		shards: shards, sc: sc, interval: interval, timeout: timeout,
		log: log, onChange: onChange,
		up:   make([]atomic.Bool, len(shards)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Shards start healthy: a cold coordinator routes optimistically
	// and demotes on the first failed call or probe, instead of
	// rejecting everything until the first probe round completes.
	for i := range p.up {
		p.up[i].Store(true)
	}
	return p
}

// run is the probe loop; call in a goroutine, stop with close().
func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *prober) probeAll() {
	for i, s := range p.shards {
		ok := p.sc.healthy(context.Background(), s, p.timeout)
		if p.up[i].Swap(ok) != ok {
			if ok {
				p.log.Info("shard healthy", "shard", s)
			} else {
				p.log.Warn("shard unhealthy", "shard", s)
			}
			if p.onChange != nil {
				p.onChange(i, ok)
			}
		}
	}
}

// close stops the probe loop and waits for it to exit.
func (p *prober) close() {
	close(p.stop)
	<-p.done
}

// healthy reports whether shard i passed its last probe (and has not
// been marked down since).
func (p *prober) healthy(i int) bool { return p.up[i].Load() }

// markDown demotes a shard immediately after a failed proxied call.
func (p *prober) markDown(i int) {
	if p.up[i].Swap(false) {
		p.log.Warn("shard unhealthy", "shard", p.shards[i], "reason", "request failed")
		if p.onChange != nil {
			p.onChange(i, false)
		}
	}
}

// healthyCount returns how many shards are currently routable.
func (p *prober) healthyCount() int {
	n := 0
	for i := range p.up {
		if p.up[i].Load() {
			n++
		}
	}
	return n
}
