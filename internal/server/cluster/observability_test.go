package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"prestores/internal/bench"
	"prestores/internal/obs"
	"prestores/internal/server"
)

type spanDoc struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
	Spans       []obs.Span        `json:"spans"`
}

func getSpanDoc(t *testing.T, base, id string) spanDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET spans: status %d: %s", resp.StatusCode, data)
	}
	var doc spanDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("spans artifact is not valid JSON: %v", err)
	}
	return doc
}

func spansNamed(spans []obs.Span, name string) []obs.Span {
	var out []obs.Span
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestClusterSpanTreeEndToEnd: a submit through the coordinator with a
// client traceparent yields one merged span tree — the coordinator's
// job root and route span plus the owning shard's spans — all under
// the client's trace ID, with correct parent/child nesting.
func TestClusterSpanTreeEndToEnd(t *testing.T) {
	_, cts, shards := newCluster(t, 2, synth("sp1"))

	const clientTrace = "fedcba9876543210fedcba9876543210"
	const clientSpan = "0102030405060708"
	req, err := http.NewRequest("POST", cts.URL+"/v1/experiments",
		bytes.NewReader([]byte(`{"id":"sp1","quick":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+clientTrace+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	waitFinal(t, cts.URL, st.ID)

	doc := getSpanDoc(t, cts.URL, st.ID)
	services := map[string]bool{}
	for _, sp := range doc.Spans {
		if got := sp.Trace.String(); got != clientTrace {
			t.Fatalf("span %s/%s on trace %s, want the client's %s", sp.Service, sp.Name, got, clientTrace)
		}
		services[sp.Service] = true
	}
	if !services["coordinator"] || !services["prestored"] {
		t.Fatalf("span tree should cover coordinator and worker; got services %v", services)
	}

	// Coordinator root nests under the client span; the shard-side job
	// root nests under the coordinator root (propagated via the
	// traceparent header on the proxied submit).
	var coordRoot, shardRoot *obs.Span
	for i := range doc.Spans {
		sp := &doc.Spans[i]
		if sp.Name != "job" {
			continue
		}
		switch sp.Service {
		case "coordinator":
			coordRoot = sp
		case "prestored":
			shardRoot = sp
		}
	}
	if coordRoot == nil || shardRoot == nil {
		t.Fatalf("missing job roots (coordinator=%v shard=%v) in %+v", coordRoot, shardRoot, doc.Spans)
	}
	if got := coordRoot.Parent.String(); got != clientSpan {
		t.Fatalf("coordinator root parent %s, want client span %s", got, clientSpan)
	}
	if shardRoot.Parent != coordRoot.ID {
		t.Fatalf("shard root parent %s, want coordinator root %s", shardRoot.Parent, coordRoot.ID)
	}
	if len(spansNamed(doc.Spans, "route")) == 0 {
		t.Fatalf("no route span in %+v", doc.Spans)
	}
	for _, name := range []string{"queue.wait", "run"} {
		got := spansNamed(doc.Spans, name)
		if len(got) != 1 {
			t.Fatalf("want exactly one %s span, got %d", name, len(got))
		}
		if got[0].Parent != shardRoot.ID {
			t.Fatalf("%s parent %s, want shard root %s", name, got[0].Parent, shardRoot.ID)
		}
	}
	_ = shards
}

// TestClusterRequeueSpansCoverBothShards kills the shard running a job
// mid-flight and asserts the merged span tree shows both shards under
// one trace ID: a route span naming the dead shard, a requeue span
// naming both, and the survivor's run spans — plus job.requeued in the
// coordinator's flight recorder.
func TestClusterRequeueSpansCoverBothShards(t *testing.T) {
	var attempt atomic.Int64
	firstStarted := make(chan struct{})
	release := make(chan struct{})
	phoenix := bench.Experiment{ID: "phoenix2", Title: "dies once", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			if attempt.Add(1) == 1 {
				fmt.Fprint(w, "part1\n")
				close(firstStarted)
				select {
				case <-ctx.Done():
				case <-release:
				}
				return
			}
			fmt.Fprint(w, "part1\npart2\n")
		}}
	_, cts, shards := newCluster(t, 2, phoenix)
	t.Cleanup(func() { close(release) })

	st := submitExp(t, cts.URL, "phoenix2")
	resp, err := http.Get(cts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readEvent(t, br) // status

	<-firstStarted
	victim := 0
	if shards[1].runs.Load() > 0 {
		victim = 1
	}
	shards[victim].die()

	var final *server.JobStatus
	for final == nil {
		if ev := readEvent(t, br); ev.Event == "done" {
			final = ev.Job
		}
	}
	if final.State != "done" {
		t.Fatalf("final state %q after failover", final.State)
	}

	doc := getSpanDoc(t, cts.URL, st.ID)
	if len(doc.Spans) == 0 {
		t.Fatal("no spans after failover")
	}
	trace := doc.Spans[0].Trace
	for _, sp := range doc.Spans {
		if sp.Trace != trace {
			t.Fatalf("spans split across traces %s and %s", trace, sp.Trace)
		}
	}
	victimURL, survivorURL := shards[victim].ts.URL, shards[1-victim].ts.URL

	routes := spansNamed(doc.Spans, "route")
	if len(routes) == 0 {
		t.Fatal("no route span")
	}
	foundVictimRoute := false
	for _, sp := range routes {
		if sp.Attr("shard") == victimURL {
			foundVictimRoute = true
		}
	}
	if !foundVictimRoute {
		t.Fatalf("no route span naming the dead shard %s in %+v", victimURL, routes)
	}
	requeues := spansNamed(doc.Spans, "requeue")
	if len(requeues) != 1 {
		t.Fatalf("want exactly one requeue span, got %d", len(requeues))
	}
	if requeues[0].Attr("from") != victimURL || requeues[0].Attr("to") != survivorURL {
		t.Fatalf("requeue span from=%q to=%q, want %q -> %q",
			requeues[0].Attr("from"), requeues[0].Attr("to"), victimURL, survivorURL)
	}
	// The survivor's execution is in the same tree (fetched live from
	// the shard that now owns the job).
	if len(spansNamed(doc.Spans, "run")) == 0 {
		t.Fatal("no run span from the surviving shard")
	}

	fresp, err := http.Get(cts.URL + "/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	fdata, err := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Records []obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(fdata, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, r := range dump.Records {
		kinds[r.Kind] = true
	}
	for _, want := range []string{"job.routed", "job.requeued", "job.done"} {
		if !kinds[want] {
			t.Errorf("coordinator flight recorder missing %q; have %v", want, kinds)
		}
	}
}

// TestFederatedMetrics: the coordinator /metrics re-exports every
// daemon family from the whole fleet with a shard label, stays
// parseable by the strict promtext parser, pre-seeds per-shard
// counters at zero, and keeps counters monotonic across scrapes.
func TestFederatedMetrics(t *testing.T) {
	_, cts, shards := newCluster(t, 2, synth("fm1"))

	scrapeParsed := func() map[string]*obs.Family {
		t.Helper()
		resp, err := http.Get(cts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fams, err := obs.ParseMetrics(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("federated /metrics does not parse: %v\n%s", err, data)
		}
		byName := map[string]*obs.Family{}
		for _, f := range fams {
			if byName[f.Name] != nil {
				t.Fatalf("family %s declared twice", f.Name)
			}
			if f.Type == "" {
				t.Errorf("family %s has no TYPE", f.Name)
			}
			byName[f.Name] = f
		}
		return byName
	}

	before := scrapeParsed()

	// Build info: the coordinator's own gauge plus a federated
	// prestored_build_info series per fleet member.
	if before["prestored_coordinator_build_info"] == nil {
		t.Error("no prestored_coordinator_build_info family")
	}
	bi := before["prestored_build_info"]
	if bi == nil {
		t.Fatal("no federated prestored_build_info family")
	}
	origins := map[string]bool{}
	for _, s := range bi.Samples {
		origins[s.Label("shard")] = true
	}
	for _, want := range []string{"self", shards[0].ts.URL, shards[1].ts.URL} {
		if !origins[want] {
			t.Errorf("prestored_build_info missing origin %q; have %v", want, origins)
		}
	}

	// Pre-seeded per-shard counters: zero-valued series exist before
	// any failure, for every configured shard.
	rq := before["prestored_coordinator_requeued_total"]
	if rq == nil {
		t.Fatal("no prestored_coordinator_requeued_total family before any requeue")
	}
	for _, url := range []string{shards[0].ts.URL, shards[1].ts.URL} {
		found := false
		for _, s := range rq.Samples {
			if s.Label("shard") == url {
				found = true
				if v, _ := s.Float(); v != 0 {
					t.Errorf("requeued_total{shard=%q} = %g before any requeue", url, v)
				}
			}
		}
		if !found {
			t.Errorf("requeued_total not pre-seeded for %q", url)
		}
	}

	st := submitExp(t, cts.URL, "fm1")
	waitFinal(t, cts.URL, st.ID)

	after := scrapeParsed()
	for name, f := range before {
		if f.Type != "counter" || !strings.HasPrefix(name, "prestored_coordinator_") {
			continue
		}
		af := after[name]
		if af == nil {
			t.Errorf("counter family %s vanished", name)
			continue
		}
		for _, s := range f.Samples {
			for _, as := range af.Samples {
				if as.Name != s.Name || !sameLabels(as.Labels, s.Labels) {
					continue
				}
				sv, _ := s.Float()
				av, _ := as.Float()
				if av < sv {
					t.Errorf("counter %s{%v} went backwards: %g -> %g", s.Name, s.Labels, sv, av)
				}
			}
		}
	}

	// The worker that ran the job shows it in its federated series.
	jf := after["prestored_jobs_finished_total"]
	if jf == nil {
		t.Fatal("no federated prestored_jobs_finished_total after a job")
	}
	ran := false
	for _, s := range jf.Samples {
		if v, _ := s.Float(); v > 0 && strings.HasPrefix(s.Label("shard"), "http") {
			ran = true
		}
	}
	if !ran {
		t.Errorf("no worker shard reports a finished job: %+v", jf.Samples)
	}
}

func sameLabels(a, b []obs.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
