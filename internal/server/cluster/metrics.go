package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prestores/internal/obs"
)

// shardCounterVec is a counter family labeled by shard base URL.
type shardCounterVec struct {
	mu     sync.Mutex
	counts map[string]int64
}

func (v *shardCounterVec) inc(shard string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.counts == nil {
		v.counts = map[string]int64{}
	}
	v.counts[shard]++
}

// seed materialises a zero-valued series for each shard. Seeded series
// render from the very first scrape and are never deleted, so per-shard
// counters stay present and monotonic across shard re-registration —
// a shard bouncing out of and back into the ring never resets or hides
// its series.
func (v *shardCounterVec) seed(shards []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.counts == nil {
		v.counts = map[string]int64{}
	}
	for _, s := range shards {
		if _, ok := v.counts[s]; !ok {
			v.counts[s] = 0
		}
	}
}

func (v *shardCounterVec) snapshot() (shards []string, vals []int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for s := range v.counts {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	for _, s := range shards {
		vals = append(vals, v.counts[s])
	}
	return shards, vals
}

// cmetrics holds the coordinator's counters. Health and job gauges
// are sampled at scrape time.
type cmetrics struct {
	routed       shardCounterVec // submits routed to a shard (202 accepted)
	cacheHits    shardCounterVec // submits a shard answered from its cache (200)
	requeued     shardCounterVec // jobs moved OFF a shard after it was lost
	shardErrors  shardCounterVec // proxied calls a shard failed to answer
	probeDowns   shardCounterVec // healthy→unhealthy transitions
	chunks       shardCounterVec // trace-analysis chunk calls a shard answered
	chunkRetries shardCounterVec // chunk calls moved OFF a shard after a failure
	scrapeErrors shardCounterVec // federated /metrics scrapes that failed or did not parse

	rejected  atomic.Int64 // submits refused: no healthy shard
	jobsDone  atomic.Int64 // proxied jobs observed reaching state done
	streamsUp atomic.Int64 // client streams currently proxied
}

// seed pre-creates every per-shard counter series for the configured
// shards (see shardCounterVec.seed).
func (m *cmetrics) seed(shards []string) {
	for _, v := range []*shardCounterVec{
		&m.routed, &m.cacheHits, &m.requeued, &m.shardErrors,
		&m.probeDowns, &m.chunks, &m.chunkRetries, &m.scrapeErrors,
	} {
		v.seed(shards)
	}
}

// renderMetrics writes the coordinator's Prometheus text exposition.
func (c *Coordinator) renderMetrics(w io.Writer) {
	m := &c.m
	counterVec := func(name, help string, v *shardCounterVec) {
		shards, vals := v.snapshot()
		if len(shards) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, s := range shards {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", name, s, vals[i])
		}
	}
	counter := func(name, help string, val int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, val)
	}
	gauge := func(name, help string, val float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, val)
	}

	fmt.Fprintf(w, "# HELP prestored_coordinator_build_info Build metadata for the coordinator binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE prestored_coordinator_build_info gauge\n")
	fmt.Fprintf(w, "prestored_coordinator_build_info{version=%q,go=%q} 1\n", obs.Version(), obs.GoVersion())

	counterVec("prestored_coordinator_routed_total",
		"Submits routed to a worker shard and accepted.", &m.routed)
	counterVec("prestored_coordinator_cache_hits_total",
		"Submits a worker shard answered from its result cache.", &m.cacheHits)
	counterVec("prestored_coordinator_requeued_total",
		"Jobs rerouted off a shard after it was lost mid-flight.", &m.requeued)
	counterVec("prestored_coordinator_shard_errors_total",
		"Proxied calls a shard failed to answer (connect failure or timeout).", &m.shardErrors)
	counterVec("prestored_coordinator_probe_failures_total",
		"Healthy-to-unhealthy transitions per shard.", &m.probeDowns)
	counterVec("prestored_coordinator_chunks_total",
		"Trace-analysis chunk calls answered by a shard.", &m.chunks)
	counterVec("prestored_coordinator_chunk_retries_total",
		"Chunk calls rerouted off a shard after it failed to answer.", &m.chunkRetries)
	counterVec("prestored_coordinator_federation_errors_total",
		"Federated /metrics scrapes that failed to fetch or parse.", &m.scrapeErrors)
	counter("prestored_coordinator_rejected_total",
		"Submits refused because no shard was healthy.", m.rejected.Load())
	counter("prestored_coordinator_jobs_done_total",
		"Proxied jobs observed reaching state done.", m.jobsDone.Load())

	fmt.Fprintf(w, "# HELP prestored_coordinator_shard_healthy Shard health from the prober (1 healthy, 0 down).\n")
	fmt.Fprintf(w, "# TYPE prestored_coordinator_shard_healthy gauge\n")
	for i, s := range c.ring.Shards() {
		up := 0
		if c.prober.healthy(i) {
			up = 1
		}
		fmt.Fprintf(w, "prestored_coordinator_shard_healthy{shard=%q} %d\n", s, up)
	}

	c.mu.Lock()
	tracked := len(c.jobs)
	c.mu.Unlock()
	gauge("prestored_coordinator_shards", "Configured worker shards.", float64(len(c.ring.Shards())))
	gauge("prestored_coordinator_jobs_tracked", "Jobs the coordinator is tracking.", float64(tracked))
	gauge("prestored_coordinator_streams_active", "Client streams currently proxied.", float64(m.streamsUp.Load()))
	gauge("prestored_coordinator_span_traces", "Traces currently held in the coordinator span store.", float64(c.spans.Traces()))
	counter("prestored_coordinator_flight_records_total", "Events recorded by the coordinator flight recorder.", int64(c.flight.Recorded()))
	gauge("prestored_coordinator_uptime_seconds", "Seconds since the coordinator started.", time.Since(c.start).Seconds())
}
