package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shardCounterVec is a counter family labeled by shard base URL.
type shardCounterVec struct {
	mu     sync.Mutex
	counts map[string]int64
}

func (v *shardCounterVec) inc(shard string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.counts == nil {
		v.counts = map[string]int64{}
	}
	v.counts[shard]++
}

func (v *shardCounterVec) snapshot() (shards []string, vals []int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for s := range v.counts {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	for _, s := range shards {
		vals = append(vals, v.counts[s])
	}
	return shards, vals
}

// cmetrics holds the coordinator's counters. Health and job gauges
// are sampled at scrape time.
type cmetrics struct {
	routed       shardCounterVec // submits routed to a shard (202 accepted)
	cacheHits    shardCounterVec // submits a shard answered from its cache (200)
	requeued     shardCounterVec // jobs moved OFF a shard after it was lost
	shardErrors  shardCounterVec // proxied calls a shard failed to answer
	probeDowns   shardCounterVec // healthy→unhealthy transitions
	chunks       shardCounterVec // trace-analysis chunk calls a shard answered
	chunkRetries shardCounterVec // chunk calls moved OFF a shard after a failure

	rejected  atomic.Int64 // submits refused: no healthy shard
	jobsDone  atomic.Int64 // proxied jobs observed reaching state done
	streamsUp atomic.Int64 // client streams currently proxied
}

// renderMetrics writes the coordinator's Prometheus text exposition.
func (c *Coordinator) renderMetrics(w io.Writer) {
	m := &c.m
	counterVec := func(name, help string, v *shardCounterVec) {
		shards, vals := v.snapshot()
		if len(shards) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, s := range shards {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", name, s, vals[i])
		}
	}
	counter := func(name, help string, val int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, val)
	}
	gauge := func(name, help string, val float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, val)
	}

	counterVec("prestored_coordinator_routed_total",
		"Submits routed to a worker shard and accepted.", &m.routed)
	counterVec("prestored_coordinator_cache_hits_total",
		"Submits a worker shard answered from its result cache.", &m.cacheHits)
	counterVec("prestored_coordinator_requeued_total",
		"Jobs rerouted off a shard after it was lost mid-flight.", &m.requeued)
	counterVec("prestored_coordinator_shard_errors_total",
		"Proxied calls a shard failed to answer (connect failure or timeout).", &m.shardErrors)
	counterVec("prestored_coordinator_probe_failures_total",
		"Healthy-to-unhealthy transitions per shard.", &m.probeDowns)
	counterVec("prestored_coordinator_chunks_total",
		"Trace-analysis chunk calls answered by a shard.", &m.chunks)
	counterVec("prestored_coordinator_chunk_retries_total",
		"Chunk calls rerouted off a shard after it failed to answer.", &m.chunkRetries)
	counter("prestored_coordinator_rejected_total",
		"Submits refused because no shard was healthy.", m.rejected.Load())
	counter("prestored_coordinator_jobs_done_total",
		"Proxied jobs observed reaching state done.", m.jobsDone.Load())

	fmt.Fprintf(w, "# HELP prestored_coordinator_shard_healthy Shard health from the prober (1 healthy, 0 down).\n")
	fmt.Fprintf(w, "# TYPE prestored_coordinator_shard_healthy gauge\n")
	for i, s := range c.ring.Shards() {
		up := 0
		if c.prober.healthy(i) {
			up = 1
		}
		fmt.Fprintf(w, "prestored_coordinator_shard_healthy{shard=%q} %d\n", s, up)
	}

	c.mu.Lock()
	tracked := len(c.jobs)
	c.mu.Unlock()
	gauge("prestored_coordinator_shards", "Configured worker shards.", float64(len(c.ring.Shards())))
	gauge("prestored_coordinator_jobs_tracked", "Jobs the coordinator is tracking.", float64(tracked))
	gauge("prestored_coordinator_streams_active", "Client streams currently proxied.", float64(m.streamsUp.Load()))
	gauge("prestored_coordinator_uptime_seconds", "Seconds since the coordinator started.", time.Since(c.start).Seconds())
}
