package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"prestores/internal/dirtbuster"
	"prestores/internal/server"
	"prestores/internal/sim"
	"prestores/internal/trace"
)

// analysisWorkload is a small write-intensive workload whose chunked
// trace spans a few dozen chunks at the test chunk size.
func analysisWorkload() dirtbuster.Workload {
	return dirtbuster.Workload{
		Name:       "clusterwl",
		NewMachine: sim.MachineA,
		Run: func(m *sim.Machine) {
			c := m.Core(0)
			buf := make([]byte, 1024)
			c.PushFunc("clusterwl.write")
			for i := uint64(0); i < 300; i++ {
				c.Write(1<<40+i*1024, buf)
			}
			c.PopFunc()
			c.PushFunc("clusterwl.read")
			for i := uint64(0); i < 100; i++ {
				c.Read(1<<40+i*1024, buf)
			}
			c.PopFunc()
		},
	}
}

// uploadTrace stores an encoded trace through the coordinator's
// embedded host and returns its address.
func uploadTrace(t *testing.T, base string, data []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Address string `json:"address"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info.Address
}

func runClusterAnalysis(t *testing.T, base, addr, app string) string {
	t.Helper()
	code, body := postJSON(t, base+"/v1/analyses", map[string]any{"trace": addr, "app": app, "line_size": 64})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit analysis: status %d: %s", code, body)
	}
	var st server.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitFinal(t, base, st.ID)
	if st.State != "done" {
		t.Fatalf("analysis %s: %s", st.State, st.Result.Err)
	}
	return st.Result.Output
}

// TestClusterAnalysisByteIdentical runs a sharded trace analysis over
// two workers and checks the report is byte-identical to the
// monolithic in-process one.
func TestClusterAnalysisByteIdentical(t *testing.T) {
	_, cts, _ := newCluster(t, 2)

	tb, line := dirtbuster.Record(analysisWorkload())
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, 16); err != nil {
		t.Fatal(err)
	}
	addr := uploadTrace(t, cts.URL, buf.Bytes())

	want := dirtbuster.AnalyzeTrace("clusterwl", tb, line, dirtbuster.Config{}).Render() + "\n"
	if got := runClusterAnalysis(t, cts.URL, addr, "clusterwl"); got != want {
		t.Fatalf("sharded report differs from monolithic\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Both workers took chunk calls (40+ calls over 2 shards — a shard
	// taking none would mean routing collapsed to one node).
	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := strings.Count(string(mtext), "prestored_coordinator_chunks_total{"); n != 2 {
		t.Fatalf("chunk calls reached %d shards, want 2\n%s", n, mtext)
	}
}

// TestClusterAnalysisSurvivesShardDeath kills one worker from inside
// its own chunk handler mid-analysis. The in-flight chunk call fails,
// the chunk is rerouted to the surviving shard, and the report must
// still be byte-identical to the monolithic one.
func TestClusterAnalysisSurvivesShardDeath(t *testing.T) {
	_, cts, shards := newCluster(t, 2)

	tb, line := dirtbuster.Record(analysisWorkload())
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, 8); err != nil {
		t.Fatal(err)
	}
	addr := uploadTrace(t, cts.URL, buf.Bytes())

	// Shard 1 dies on its third chunk request: the request aborts
	// mid-connection and every later call is refused, exactly like a
	// crashed worker whose port is still bound.
	victim := shards[1]
	inner := victim.kill.h
	var chunkCalls atomic.Int64
	victim.kill.h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/analyses/chunks" && chunkCalls.Add(1) == 3 {
			victim.die()
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})

	want := dirtbuster.AnalyzeTrace("clusterwl", tb, line, dirtbuster.Config{}).Render() + "\n"
	if got := runClusterAnalysis(t, cts.URL, addr, "clusterwl"); got != want {
		t.Fatalf("report after shard death differs from monolithic\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if chunkCalls.Load() < 3 {
		t.Fatalf("victim shard saw only %d chunk calls; the kill never fired", chunkCalls.Load())
	}

	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mtext), "prestored_coordinator_chunk_retries_total{") {
		t.Fatalf("no chunk retries recorded after shard death\n%s", mtext)
	}
}

// TestChunkAddressStable pins the placement key: identical chunks must
// hash identically (cache/routing stability) and different chunks must
// not collide on the tiny test set.
func TestChunkAddressStable(t *testing.T) {
	tb, _ := dirtbuster.Record(analysisWorkload())
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, 64); err != nil {
		t.Fatal(err)
	}
	cr, err := trace.NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for {
		c, err := cr.Next()
		if err != nil {
			break
		}
		a1, err := chunkAddress(c)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := chunkAddress(c)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatalf("chunk %d address not stable: %s vs %s", c.Index, a1, a2)
		}
		if prev, dup := seen[a1]; dup {
			t.Fatalf("chunks %d and %d share address %s", prev, c.Index, a1)
		}
		seen[a1] = c.Index
	}
	if len(seen) < 2 {
		t.Fatalf("only %d chunks", len(seen))
	}
}
