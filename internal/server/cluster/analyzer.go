package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"prestores/internal/dirtbuster"
	"prestores/internal/server"
	"prestores/internal/trace"
)

// clusterAnalyzer is the chunk-analysis backend the coordinator injects
// into its embedded host: each per-chunk map step of a trace analysis
// becomes a POST /v1/analyses/chunks against a worker shard, picked by
// consistent hashing of the chunk's content-address. Identical chunks
// always land on the same shard, a shard answering 429 is retried with
// the shared backoff schedule, and a shard that dies mid-analysis is
// demoted while its chunk moves to the next ring position. Both phases
// are pure functions of the chunk (plus the plan), and the embedded
// host still reduces partials in chunk order — so the sharded report
// stays byte-identical to the monolithic one no matter which shards
// did the work or in what order they answered.
type clusterAnalyzer struct {
	c *Coordinator
}

func (a clusterAnalyzer) Concurrency() int {
	n := 2 * len(a.c.cfg.Shards)
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}

// chunkAddress content-addresses one chunk for ring placement.
func chunkAddress(c *trace.Chunk) (string, error) {
	var buf bytes.Buffer
	if err := trace.EncodeChunk(&buf, c); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

func (a clusterAnalyzer) Stats(ctx context.Context, ch *trace.Chunk) (*dirtbuster.Stats, error) {
	body, err := server.StatsChunkRequest(ch)
	if err != nil {
		return nil, err
	}
	resp, err := a.dispatch(ctx, ch, body)
	if err != nil {
		return nil, err
	}
	var st dirtbuster.Stats
	if err := json.Unmarshal(resp, &st); err != nil {
		return nil, fmt.Errorf("chunk %d: bad stats payload: %v", ch.Index, err)
	}
	return &st, nil
}

func (a clusterAnalyzer) Partial(ctx context.Context, plan *dirtbuster.Plan, ch *trace.Chunk) (*dirtbuster.Partial, error) {
	body, err := server.PartialChunkRequest(plan, ch)
	if err != nil {
		return nil, err
	}
	resp, err := a.dispatch(ctx, ch, body)
	if err != nil {
		return nil, err
	}
	pt, err := dirtbuster.DecodePartial(bytes.NewReader(resp))
	if err != nil {
		return nil, fmt.Errorf("chunk %d: bad partial payload: %v", ch.Index, err)
	}
	return pt, nil
}

// dispatch walks the chunk's ring preference order over healthy shards
// until one answers the framed request. Transport failures demote the
// shard and move the chunk to the next ring position; 429s are
// absorbed with backoff; any other application-level rejection is
// final (a shard that calls the request malformed will not change its
// mind elsewhere).
func (a clusterAnalyzer) dispatch(ctx context.Context, ch *trace.Chunk, body []byte) ([]byte, error) {
	c := a.c
	addr, err := chunkAddress(ch)
	if err != nil {
		return nil, err
	}
	tried := 0
	var lastErr error
	for _, shard := range c.ring.Sequence(addr) {
		if !c.prober.healthy(shard) {
			continue
		}
		tried++
		data, err := a.tryShard(ctx, shard, body)
		if err == nil {
			c.m.chunks.inc(c.cfg.Shards[shard])
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var fe *chunkFinalError
		if errors.As(err, &fe) {
			return nil, err
		}
		c.m.chunkRetries.inc(c.cfg.Shards[shard])
		lastErr = err
	}
	if tried == 0 {
		return nil, fmt.Errorf("chunk %d: %w (of %d)", ch.Index, errNoHealthyShard, len(c.cfg.Shards))
	}
	return nil, fmt.Errorf("chunk %d: every healthy shard failed: %v", ch.Index, lastErr)
}

// chunkFinalError marks a shard answer that retrying elsewhere cannot
// improve.
type chunkFinalError struct{ msg string }

func (e *chunkFinalError) Error() string { return e.msg }

// tryShard runs the request against one shard, absorbing its 429s.
func (a clusterAnalyzer) tryShard(ctx context.Context, shard int, body []byte) ([]byte, error) {
	c := a.c
	for attempt := 0; ; attempt++ {
		data, code, err := c.sc.postChunk(ctx, c.cfg.Shards[shard], body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c.shardFailed(shard, "chunk", err)
			return nil, err
		}
		switch code {
		case http.StatusOK:
			return data, nil
		case http.StatusTooManyRequests:
			if attempt >= 8 {
				return nil, fmt.Errorf("shard %s stayed busy through %d retries", c.cfg.Shards[shard], attempt)
			}
			if err := c.sc.bo.Sleep(ctx, attempt); err != nil {
				return nil, err
			}
		default:
			return nil, &chunkFinalError{msg: fmt.Sprintf("shard %s rejected chunk: %d %s",
				c.cfg.Shards[shard], code, bytes.TrimSpace(data))}
		}
	}
}
