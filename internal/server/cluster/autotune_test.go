package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prestores/internal/server"
)

// sitesAutotune is the autotune request the cluster test drives: the
// sites workload pins {hot: demote, once: clean} as the unique elapsed
// optimum, so the winning plan is known.
const sitesAutotune = `{
  "spec": {
    "version": 1,
    "machine": {"preset": "machine-a"},
    "workload": {"name": "sites", "params": {"once_lines": 2048, "rounds": 8}},
    "policy": {"ops": ["none"], "columns": [{"title": "elapsed", "op": "none", "metric": "elapsed"}]}
  },
  "seed": 7,
  "objective": "elapsed"
}`

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func postRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeStatus(t *testing.T, data []byte) server.JobStatus {
	t.Helper()
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding job status %s: %v", data, err)
	}
	return st
}

// TestClusterAutotuneMatchesLocalByteForByte submits the same seeded
// autotune request to a standalone daemon and to a two-shard cluster.
// The coordinator runs the search on its embedded host and fans every
// candidate evaluation out to the shards; because evaluation is
// deterministic wherever it runs, the recorded trajectories must be
// byte-identical.
func TestClusterAutotuneMatchesLocalByteForByte(t *testing.T) {
	// Standalone reference daemon.
	local := server.New(server.Config{Workers: 2})
	lts := httptest.NewServer(local.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		local.Shutdown(ctx)
		lts.Close()
	})

	code, data := postRaw(t, lts.URL+"/v1/autotune", sitesAutotune)
	if code != http.StatusAccepted {
		t.Fatalf("local submit: status %d: %s", code, data)
	}
	localSt := decodeStatus(t, data)
	localSt = waitFinal(t, lts.URL, localSt.ID)
	if localSt.State != "done" {
		t.Fatalf("local autotune failed: %+v", localSt)
	}
	code, localTraj := getBody(t, lts.URL+"/v1/jobs/"+localSt.ID+"/trajectory")
	if code != http.StatusOK {
		t.Fatalf("local trajectory: status %d: %s", code, localTraj)
	}

	// The same request through a two-shard cluster.
	_, cts, shards := newCluster(t, 2)
	code, data = postRaw(t, cts.URL+"/v1/autotune", sitesAutotune)
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: status %d: %s", code, data)
	}
	st := decodeStatus(t, data)
	if strings.HasPrefix(st.ID, "cjob-") {
		t.Fatalf("autotune job got a routed ID %s, want an embedded-host ID", st.ID)
	}
	st = waitFinal(t, cts.URL, st.ID)
	if st.State != "done" {
		t.Fatalf("cluster autotune failed: %+v", st)
	}
	code, clusterTraj := getBody(t, cts.URL+"/v1/jobs/"+st.ID+"/trajectory")
	if code != http.StatusOK {
		t.Fatalf("cluster trajectory: status %d: %s", code, clusterTraj)
	}

	if string(localTraj) != string(clusterTraj) {
		t.Errorf("cluster trajectory differs from local:\n%s\n---\n%s", clusterTraj, localTraj)
	}

	// The candidate evaluations must actually have run on the shards:
	// every routed eval shows up in a shard's per-kind job counters.
	evals := 0
	for _, f := range shards {
		code, m := getBody(t, f.ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("shard metrics: status %d", code)
		}
		if strings.Contains(string(m), `kind="eval"`) {
			evals++
		}
	}
	if evals == 0 {
		t.Error("no shard reports eval jobs; candidates did not fan out")
	}

	// The coordinator's metrics carry both its own families and the
	// federated daemon families: the embedded host's autotune counters
	// appear relabeled as shard="self".
	code, m := getBody(t, cts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("coordinator metrics: status %d", code)
	}
	for _, want := range []string{"prestored_coordinator_routed_total", `prestored_autotune_searches_total{shard="self"} 1`} {
		if !strings.Contains(string(m), want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}
}
