// Package server exposes the whole prestores stack — paper
// experiments, DirtBuster analyses and trace analyses — as a
// simulation-as-a-service HTTP/JSON daemon (cmd/prestored). It is
// stdlib-only: net/http for transport, a bounded job queue feeding a
// worker pool built on the bench runner's guarded single-experiment
// harness, a content-addressed result cache with in-flight request
// coalescing, NDJSON progress streaming, Prometheus-text metrics, and
// graceful shutdown that drains running jobs.
//
// API (all JSON unless noted):
//
//	POST   /v1/experiments        {"id":"fig3","quick":true}    submit an experiment job
//	POST   /v1/dirtbuster         {"workload":"clht","quick":true}
//	POST   /v1/trace              {"workload":"clht","mode":"dirtbuster|report|pmcheck"}
//	POST   /v1/scenarios          {"spec":{...},"quick":true}   run a declarative scenario spec
//	POST   /v1/traces             encoded trace body (binary)   store a recording; ?resume=1 opens a resumable upload
//	PUT    /v1/traces/uploads/{id}?offset=N                     append one part (409 carries the offset to resume from)
//	POST   /v1/traces/uploads/{id}/commit                       validate and store the assembled upload
//	GET    /v1/traces             stored-trace listing; GET/DELETE /v1/traces/{address} fetch/evict one
//	POST   /v1/analyses           {"trace":"<address>"}         chunked DirtBuster analysis of a stored trace
//	POST   /v1/analyses/chunks    framed chunk (binary)         one synchronous per-chunk map step (cluster fan-out primitive)
//	       ?stream=1 on any submit streams NDJSON progress instead of returning a job handle
//	GET    /v1/experiments        registry listing
//	GET    /v1/registry           scenario building blocks (machines, devices, workloads, stores, formats)
//	GET    /v1/workloads          DirtBuster workload listing
//	GET    /v1/jobs/{id}          job status (+ result when finished)
//	GET    /v1/jobs/{id}/stream   NDJSON progress stream (attach/replay; ?offset=N resumes at byte N)
//	DELETE /v1/jobs/{id}          cooperative cancellation
//	GET    /metrics               Prometheus text format
//	GET    /healthz               liveness ("ok", or 503 while draining)
//
// Submits return 202 with a job handle (or 200 with the result on a
// cache hit), 429 when the queue is full, and 503 while shutting down.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"prestores/internal/autotune"
	"prestores/internal/bench"
	"prestores/internal/checkpoint"
	"prestores/internal/dirtbuster"
	"prestores/internal/obs"
	"prestores/internal/telemetry"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the job worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// <= 0 means 64. A full queue rejects submits with 429.
	QueueDepth int
	// JobTimeout bounds each job's wall-clock time; 0 disables.
	JobTimeout time.Duration
	// MaxFinished bounds how many finished jobs (and cached results)
	// are retained, oldest evicted first; <= 0 means 1024.
	MaxFinished int
	// Version namespaces the result cache: results computed by one
	// build must not be served for another. Empty means the VCS
	// revision from build info, or "dev".
	Version string
	// Lookup resolves experiment IDs; nil means bench.Lookup.
	// Tests inject synthetic experiments here.
	Lookup func(id string) (bench.Experiment, bool)
	// Workloads lists the DirtBuster-analyzable workloads; nil means
	// bench.Table2Workloads.
	Workloads func(quick bool) []dirtbuster.Workload
	// CheckpointBytes bounds the in-memory warm-state checkpoint cache
	// shared by all jobs; 0 means checkpoint.DefaultMaxBytes, negative
	// disables checkpointing entirely (every sweep loads cold).
	CheckpointBytes int64
	// CheckpointDir enables the checkpoint disk tier: warm states
	// survive LRU pressure and daemon restarts. Empty keeps them
	// memory-only.
	CheckpointDir string
	// Logger receives structured logs (job lifecycle with job IDs);
	// nil discards them.
	Logger *slog.Logger
	// EnablePprof registers net/http/pprof handlers under /debug/pprof/
	// on the daemon mux. Off by default: the profiling surface should
	// not be reachable unless asked for.
	EnablePprof bool
	// AutotuneEvaluator overrides how autotune jobs measure candidate
	// plans; nil means in-process evaluation (autotune.Local). The
	// cluster coordinator injects an evaluator that fans candidates out
	// across its worker shards.
	AutotuneEvaluator autotune.Evaluator
	// TraceQuotaBytes bounds the content-addressed trace store (stored
	// traces plus open upload buffers); <= 0 means DefaultTraceQuota.
	TraceQuotaBytes int64
	// ChunkAnalyzer overrides how chunked trace analyses (POST
	// /v1/analyses) compute per-chunk results; nil means in-process.
	// The cluster coordinator injects an analyzer that fans chunks out
	// across its worker shards.
	ChunkAnalyzer ChunkAnalyzer
	// Instance labels this process's spans and trace artifacts,
	// typically the listen address. Empty is fine for tests.
	Instance string
	// Flight is the always-on flight recorder; nil means a fresh
	// default-sized one. cmd/prestored passes its own so the signal
	// handler can dump it on forced shutdown.
	Flight *obs.FlightRecorder
}

var (
	errQueueFull    = errors.New("job queue full")
	errShuttingDown = errors.New("server shutting down")
)

// Server is the prestored daemon: scheduler, cache and HTTP surface.
// Create with New, serve s.Handler(), stop with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	closed   bool
	seq      uint64
	jobs     map[string]*job          // by job ID, bounded by MaxFinished
	finished []string                 // finished job IDs, eviction order
	inflight map[string]*job          // cache key → queued/running job (coalescing)
	cache    map[string]*bench.Result // cache key → successful result
	cacheIDs map[string]string        // cache key → job ID that produced it

	log    *slog.Logger
	m      metrics
	ck     *checkpoint.Store // shared warm-state cache; nil when disabled
	traces *traceStore       // uploaded recordings, content-addressed
	tracer *obs.Tracer       // span recording for this process
	spans  *obs.Store        // backing of GET /v1/jobs/{id}/spans
	flight *obs.FlightRecorder
	// chunkSem bounds concurrent POST /v1/analyses/chunks work so a
	// coordinator's fan-out cannot starve this shard's job workers.
	chunkSem chan struct{}
	start    time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 1024
	}
	if cfg.Version == "" {
		cfg.Version = buildVersion()
	}
	if cfg.Lookup == nil {
		cfg.Lookup = bench.Lookup
	}
	if cfg.Workloads == nil {
		cfg.Workloads = bench.Table2Workloads
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Flight == nil {
		cfg.Flight = obs.NewFlightRecorder(0)
	}
	s := &Server{
		log: cfg.Logger,
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    make(map[string]*bench.Result),
		cacheIDs: make(map[string]string),
		traces:   newTraceStore(cfg.TraceQuotaBytes),
		chunkSem: make(chan struct{}, max(2, cfg.Workers)),
		spans:    obs.NewStore(0, 0),
		flight:   cfg.Flight,
		start:    time.Now(),
	}
	s.tracer = &obs.Tracer{Service: "prestored", Instance: cfg.Instance, Store: s.spans}
	if cfg.CheckpointBytes >= 0 {
		ck, err := checkpoint.NewStore(cfg.CheckpointBytes, cfg.CheckpointDir)
		if err != nil {
			// The disk tier is an optimization; fall back to memory-only
			// rather than refusing to start.
			s.log.Warn("checkpoint disk tier unavailable", "dir", cfg.CheckpointDir, "error", err)
			ck, _ = checkpoint.NewStore(cfg.CheckpointBytes, "")
		}
		ck.SetFlight(s.flight)
		s.ck = ck
	}
	s.m.init()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// buildVersion is the cache-key namespace: the VCS revision when the
// binary carries one, else "dev". It is obs.Version, which all the
// binaries also report via -version and the build_info gauge — one
// notion of "what build is this" across the fleet.
func buildVersion() string { return obs.Version() }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the daemon: no new submits are accepted (503),
// queued and running jobs run to completion, workers exit. If ctx
// expires first, the remaining jobs are cancelled cooperatively and
// Shutdown waits for them to stop, returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline hit: cancel everything still alive and wait for
	// the cooperative stops.
	s.mu.Lock()
	for _, j := range s.inflight {
		j.cancel()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// worker drains the job queue. Dequeued jobs that were cancelled while
// waiting have already been finalized and are skipped.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if !j.trySetRunning() {
			continue
		}
		wait := time.Since(j.submitted)
		s.m.queueWait.observe(j.kind, wait)
		// The queue wait becomes a span after the fact: submit time to
		// pickup, parented to the job's root span.
		s.tracer.Record(j.sc, "queue.wait", j.submitted, time.Now(), obs.KV("kind", j.kind))
		s.flight.Record("job.start", j.id, j.sc.Trace.String(), j.kind)
		s.log.InfoContext(j.logCtx(), "job start", "job", j.id, "kind", j.kind, "queue_wait", wait)
		s.m.running.Add(1)
		// Each job gets its own view of the shared checkpoint store:
		// warm states are reused across jobs, hit/miss counts stay
		// per-job for the lifecycle log lines.
		ctx := j.ctx
		if s.ck != nil {
			j.ckpt = s.ck.View()
			ctx = checkpoint.NewContext(ctx, j.ckpt)
		}
		// The run span nests under the job root and travels in the
		// context, so deep layers (checkpoint restore, autotune eval
		// fan-out, chunk pipeline) hang their own spans off it.
		ctx = obs.ContextWithSpan(obs.ContextWithTracer(ctx, s.tracer), j.sc)
		ctx, runSpan := obs.Start(ctx, "run", obs.KV("kind", j.kind), obs.KV("job", j.id))
		start := time.Now()
		res := j.run(ctx, j)
		dur := time.Since(start)
		runSpan.End()
		s.m.running.Add(-1)
		s.m.runDur.observe(j.kind, dur)
		s.finalize(j, res)
	}
}

// submit is the scheduling core: content-address the request, answer
// from the cache, coalesce onto an identical in-flight job, or enqueue
// a new one (429 when the queue is full). detached jobs run to
// completion even if every watcher disconnects. parent is the caller's
// span context (extracted from the request's traceparent header): the
// new job's trace continues it, so a coordinator — or the bench client
// — sees its remote work under its own trace ID.
func (s *Server) submit(kind string, spec any, detached bool, parent obs.SpanContext,
	run func(context.Context, *job) bench.Result) (JobStatus, *job, error) {
	key := cacheKey(kind, spec, s.cfg.Version)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, nil, errShuttingDown
	}
	if res, ok := s.cache[key]; ok {
		s.m.cacheHits.Add(1)
		id := s.cacheIDs[key]
		s.flight.Record("cache.hit", id, parent.Trace.String(), kind)
		if parent.Valid() {
			// The caller still gets a span for the answered submit, in
			// its own trace — a cache hit is a scheduling decision worth
			// seeing on the timeline even though nothing ran.
			now := time.Now()
			s.tracer.Record(parent, "cache.hit", now, now, obs.KV("kind", kind), obs.KV("job", id))
		}
		return JobStatus{
			ID: id, Kind: kind, Key: key,
			State: stateDone.String(), Cached: true, Result: res,
		}, nil, nil
	}
	if j, ok := s.inflight[key]; ok {
		s.m.coalesced.Add(1)
		s.flight.Record("coalesced", j.id, parent.Trace.String(), kind)
		if parent.Valid() {
			now := time.Now()
			s.tracer.Record(parent, "coalesced", now, now,
				obs.KV("kind", kind), obs.KV("job", j.id), obs.KV("joined_trace", j.sc.Trace.String()))
		}
		if detached {
			j.mu.Lock()
			j.detached = true
			j.mu.Unlock()
		}
		st := j.status()
		st.Coalesced = true
		return st, j, nil
	}

	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: fmt.Sprintf("job-%d", s.seq), kind: kind, key: key,
		run: run, ctx: ctx, cancel: cancel,
		out: newProgressLog(), done: make(chan struct{}),
		detached: detached, submitted: time.Now(),
		sc: s.tracer.Child(parent), parent: parent.Span,
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.m.rejected.Add(1)
		s.flight.Record("rejected", "", parent.Trace.String(), kind+": queue full")
		return JobStatus{}, nil, errQueueFull
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	s.m.cacheMisses.Add(1)
	s.flight.Record("job.queued", j.id, j.sc.Trace.String(), kind)
	s.log.InfoContext(j.logCtx(), "job submitted", "job", j.id, "kind", kind, "key", key)
	return j.status(), j, nil
}

// finalize moves a job to its final state, caches successful results,
// updates metrics, evicts old finished jobs, and releases streamers.
func (s *Server) finalize(j *job, res bench.Result) {
	j.mu.Lock()
	switch {
	case j.ctx.Err() != nil:
		j.state = stateCancelled
	case res.Err != "":
		j.state = stateFailed
	default:
		j.state = stateDone
	}
	final := j.state
	j.result = &res
	j.mu.Unlock()

	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if final == stateDone {
		s.cache[j.key] = &res
		s.cacheIDs[j.key] = j.id
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxFinished {
		old := s.finished[0]
		s.finished = s.finished[1:]
		if oj, ok := s.jobs[old]; ok {
			delete(s.jobs, old)
			if s.cacheIDs[oj.key] == old {
				delete(s.cache, oj.key)
				delete(s.cacheIDs, oj.key)
			}
		}
	}
	s.mu.Unlock()

	// Close the job's root span: submit time to final state, covering
	// the queue wait and run spans nested under it.
	s.tracer.Add(obs.Span{
		Trace: j.sc.Trace, ID: j.sc.Span, Parent: j.parent,
		Name: "job", Start: j.submitted.UnixNano(), End: time.Now().UnixNano(),
		Attrs: []obs.Attr{
			obs.KV("kind", j.kind), obs.KV("job", j.id), obs.KV("state", final.String()),
		},
	})
	attrs := []any{"job", j.id, "kind", j.kind}
	if j.ckpt != nil {
		attrs = append(attrs, "ckpt_hits", j.ckpt.Hits(), "ckpt_misses", j.ckpt.Misses())
	}
	logCtx := j.logCtx()
	switch final {
	case stateDone:
		s.m.jobsDone.Add(1)
		s.flight.Record("job.done", j.id, j.sc.Trace.String(), j.kind)
		s.log.InfoContext(logCtx, "job done", attrs...)
	case stateFailed:
		s.m.jobsFailed.Add(1)
		s.flight.Record("job.failed", j.id, j.sc.Trace.String(), res.Err)
		s.log.WarnContext(logCtx, "job failed", append(attrs, "error", res.Err)...)
	case stateCancelled:
		s.m.jobsCancelled.Add(1)
		s.flight.Record("job.cancelled", j.id, j.sc.Trace.String(), j.kind)
		s.log.InfoContext(logCtx, "job cancelled", attrs...)
	}
	s.m.finished.inc(j.kind, final.String())
	j.cancel() // release the context's resources
	j.out.close()
	close(j.done)
}

// watch registers a streaming connection on a job.
func (s *Server) watch(j *job) {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

// unwatch drops a streaming connection. When the last watcher of a
// non-detached job disconnects before the job finishes, the job is
// cancelled: nobody is waiting for the answer, so the simulation work
// stops at its next iteration boundary. A job still in the queue is
// finalized immediately.
func (s *Server) unwatch(j *job) {
	j.mu.Lock()
	j.watchers--
	abandon := j.watchers == 0 && !j.detached &&
		(j.state == stateQueued || j.state == stateRunning)
	wasQueued := abandon && j.state == stateQueued
	if wasQueued {
		j.state = stateCancelled // worker will skip it at dequeue
	}
	j.mu.Unlock()
	if !abandon {
		return
	}
	j.cancel()
	if wasQueued {
		s.finalizeAbandoned(j)
	}
}

// cancelJob handles DELETE: cancel the context; a job still in the
// queue is finalized immediately, a running one stops cooperatively.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	wasQueued := j.state == stateQueued
	if wasQueued {
		j.state = stateCancelled
	}
	j.mu.Unlock()
	j.cancel()
	if wasQueued {
		s.finalizeAbandoned(j)
	}
}

// finalizeAbandoned records the final state of a job cancelled before
// a worker picked it up. The state is already stateCancelled (set by
// the caller under the job lock, which is what makes the worker skip
// it), so finalize's bookkeeping runs with a synthetic result.
func (s *Server) finalizeAbandoned(j *job) {
	res := bench.Result{ID: j.kind, Title: "cancelled before start", Err: "cancelled: " + context.Canceled.Error()}
	j.mu.Lock()
	j.result = &res
	j.mu.Unlock()

	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.finished = append(s.finished, j.id)
	s.mu.Unlock()
	s.m.jobsCancelled.Add(1)
	s.m.finished.inc(j.kind, stateCancelled.String())
	s.tracer.Add(obs.Span{
		Trace: j.sc.Trace, ID: j.sc.Span, Parent: j.parent,
		Name: "job", Start: j.submitted.UnixNano(), End: time.Now().UnixNano(),
		Attrs: []obs.Attr{
			obs.KV("kind", j.kind), obs.KV("job", j.id),
			obs.KV("state", stateCancelled.String()), obs.KV("abandoned", "queued"),
		},
	})
	s.flight.Record("job.cancelled", j.id, j.sc.Trace.String(), j.kind+": before start")
	s.log.InfoContext(j.logCtx(), "job cancelled", "job", j.id, "kind", j.kind, "queued", true)
	j.out.close()
	close(j.done)
}

// cacheKey content-addresses a request: kind, canonical spec JSON and
// build version, hashed. Identical work submitted twice — across time
// (cache) or concurrently (coalescing) — maps to the same key.
func cacheKey(kind string, spec any, version string) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// Specs are plain structs; this cannot fail.
		panic("server: unmarshalable spec: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// ---- HTTP surface ----

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/experiments", s.handleSubmitExperiment)
	s.mux.HandleFunc("POST /v1/dirtbuster", s.handleSubmitDirtbuster)
	s.mux.HandleFunc("POST /v1/trace", s.handleSubmitTrace)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleSubmitScenario)
	s.mux.HandleFunc("POST /v1/eval", s.handleSubmitEval)
	s.mux.HandleFunc("POST /v1/autotune", s.handleSubmitAutotune)
	s.mux.HandleFunc("POST /v1/traces", s.handleTracePost)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("PUT /v1/traces/uploads/{id}", s.handleTraceUploadPut)
	s.mux.HandleFunc("POST /v1/traces/uploads/{id}/commit", s.handleTraceUploadCommit)
	s.mux.HandleFunc("DELETE /v1/traces/uploads/{id}", s.handleTraceUploadAbort)
	s.mux.HandleFunc("GET /v1/traces/{address}", s.handleTraceGet)
	s.mux.HandleFunc("DELETE /v1/traces/{address}", s.handleTraceDelete)
	s.mux.HandleFunc("POST /v1/analyses", s.handleSubmitAnalysis)
	s.mux.HandleFunc("POST /v1/analyses/chunks", s.handleAnalyzeChunk)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	s.mux.HandleFunc("GET /v1/workloads", s.handleListWorkloads)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStreamJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.artifactHandler("timeline"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/linereport", s.artifactHandler("linereport"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/trajectory", s.artifactHandler("trajectory"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/winner", s.artifactHandler("winner"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleJobSpans)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/debug/flightrecorder", s.handleFlightRecorder)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
}

// artifactHandler serves a job's named artifact (recorded telemetry).
// 409 while the job is still producing it, 404 when the job never
// recorded one (the submit lacked a telemetry block).
func (s *Server) artifactHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.job(r.PathValue("id"))
		if j == nil {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		if !j.finished() {
			writeError(w, http.StatusConflict, "job %s is not finished; poll GET /v1/jobs/%s", j.id, j.id)
			return
		}
		data, ok := j.artifact(name)
		if !ok {
			writeError(w, http.StatusNotFound,
				"job %s recorded no %s artifact (telemetry artifacts need a telemetry block on the submit)", j.id, name)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}
}

// handleJobSpans serves the job's distributed-trace spans as a Chrome
// trace-event artifact (with the raw spans embedded under "spans").
// Unlike telemetry artifacts it is available while the job is still
// running — a partial span tree is exactly what you want when asking
// why a job is slow right now.
func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	spans, dropped := s.spans.Spans(j.sc.Trace)
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteSpanTimeline(w, spans, dropped)
}

// handleFlightRecorder dumps the always-on ring of recent job
// transitions, errors and cache decisions — the first stop when the
// daemon is misbehaving and the metrics only say "something is wrong".
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}

// parentFrom extracts the caller's span context from the request's
// traceparent header (zero when absent or malformed, which submit
// treats as "this daemon is the trace root").
func parentFrom(r *http.Request) obs.SpanContext {
	sc, _ := obs.Extract(r.Header)
	return sc
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// respondSubmit answers a submit: stream the job when requested,
// otherwise return the job handle (202) or cached result (200).
func (s *Server) respondSubmit(w http.ResponseWriter, r *http.Request, st JobStatus, j *job, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, "job queue full (depth %d); retry later", s.cfg.QueueDepth)
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	case j == nil: // cache hit
		writeJSON(w, http.StatusOK, st)
	case streamRequested(r):
		s.streamJob(w, r, j)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func streamRequested(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	var spec experimentSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	e, ok := s.cfg.Lookup(spec.ID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q; GET /v1/experiments lists the registry", spec.ID)
		return
	}
	st, j, err := s.submit("experiment", spec, !streamRequested(r), parentFrom(r), s.experimentRun(e, spec.Quick))
	s.respondSubmit(w, r, st, j, err)
}

func (s *Server) handleSubmitDirtbuster(w http.ResponseWriter, r *http.Request) {
	var spec dirtbusterSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	wl, ok := s.lookupWorkload(spec.Workload, spec.Quick)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown workload %q; GET /v1/workloads lists them", spec.Workload)
		return
	}
	st, j, err := s.submit("dirtbuster", spec, !streamRequested(r), parentFrom(r), s.dirtbusterRun(wl))
	s.respondSubmit(w, r, st, j, err)
}

func (s *Server) handleSubmitTrace(w http.ResponseWriter, r *http.Request) {
	var spec traceSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	// Trace recordings always use smoke-sized workloads, like
	// prestore-trace: full traces of full-size workloads are huge.
	wl, ok := s.lookupWorkload(spec.Workload, true)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown workload %q; GET /v1/workloads lists them", spec.Workload)
		return
	}
	st, j, err := s.submit("trace", spec, !streamRequested(r), parentFrom(r), s.traceRun(wl, spec))
	s.respondSubmit(w, r, st, j, err)
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []entry
	for _, e := range bench.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleListWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, wl := range s.cfg.Workloads(true) {
		out = append(out, wl.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

// streamEvent is one NDJSON line of a progress stream.
type streamEvent struct {
	Event string     `json:"event"` // "status", "output", "done"
	Data  string     `json:"data,omitempty"`
	Job   *JobStatus `json:"job,omitempty"`
}

func (s *Server) handleStreamJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.streamJob(w, r, j)
}

// streamJob follows a job as NDJSON: a status line, output chunks as
// the simulation produces them, and a final done line carrying the
// result. ?offset=N replays from byte N of the job's output instead
// of from the start, so a client (or the cluster coordinator proxying
// for one) that lost its connection mid-job can reconnect without
// receiving — or re-emitting — bytes it already consumed. An offset
// beyond the bytes produced so far simply waits for the log to catch
// up. The connection is a watcher: if the last watcher of a
// non-detached job disconnects, the job is cancelled (see unwatch).
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	off := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q (want a non-negative integer)", v)
			return
		}
		off = n
	}
	// The stream itself is a span in the job's trace: how long a
	// watcher followed, and from what byte offset it (re)attached —
	// reconnect-after-failover shows up as a second stream span with a
	// non-zero offset.
	streamStart, attachOff := time.Now(), off
	defer func() {
		s.tracer.Record(j.sc, "stream.replay", streamStart, time.Now(),
			obs.KV("offset", strconv.Itoa(attachOff)))
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)

	s.watch(j)
	defer s.unwatch(j)

	st := j.status()
	if err := enc.Encode(streamEvent{Event: "status", Job: &st}); err != nil {
		return
	}
	flush()

	for {
		chunk, noff, closed, wake := j.out.next(off)
		if len(chunk) > 0 {
			off = noff
			if err := enc.Encode(streamEvent{Event: "output", Data: string(chunk)}); err != nil {
				return
			}
			flush()
			continue
		}
		if closed {
			break
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
	<-j.done
	st = j.status()
	enc.Encode(streamEvent{Event: "done", Job: &st})
	flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.queue)
	cacheEntries := len(s.cache)
	inflight := len(s.inflight)
	s.mu.Unlock()
	g := metricsGauges{
		queueDepth:    queued,
		queueCapacity: s.cfg.QueueDepth,
		workers:       s.cfg.Workers,
		inflight:      inflight,
		cacheEntries:  cacheEntries,
		uptime:        time.Since(s.start),
		version:       s.cfg.Version,
		goVersion:     obs.GoVersion(),
		spanTraces:    s.spans.Traces(),
		flightRecords: s.flight.Recorded(),
	}
	if s.ck != nil {
		g.ckptEnabled = true
		g.ckptHits = s.ck.Hits()
		g.ckptMisses = s.ck.Misses()
		g.ckptBytes = s.ck.Bytes()
	}
	g.traceBytes, g.traceStored = s.traces.usage()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.render(w, g)
}
