package server

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"prestores/internal/bench"
	"prestores/internal/checkpoint"
)

// syncWriter serializes slog writes from worker goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestJobContextCarriesCheckpointView asserts the worker injects a
// per-job view of the shared store into the run context, and that the
// job-lifecycle log line reports the job's own hit/miss counts.
func TestJobContextCarriesCheckpointView(t *testing.T) {
	var logBuf syncWriter
	e := bench.Experiment{
		ID: "ck1", Title: "checkpoint probe", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			view := checkpoint.FromContext(ctx)
			if view == nil {
				io.WriteString(w, "no view\n")
				return
			}
			if _, ok := view.Get("probe"); ok {
				io.WriteString(w, "unexpected hit\n")
				return
			}
			view.Put("probe", []byte("warm"))
			if data, ok := view.Get("probe"); !ok || string(data) != "warm" {
				io.WriteString(w, "lost put\n")
				return
			}
			io.WriteString(w, "view ok\n")
		},
	}
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Lookup:  lookupOf(e),
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	st := submit(t, ts.URL, map[string]any{"id": "ck1", "quick": true})
	final := waitFinal(t, ts.URL, st.ID)
	if final.State != "done" || !strings.Contains(final.Result.Output, "view ok") {
		t.Fatalf("job did not see a working checkpoint view: %+v", final)
	}
	if s.ck == nil || s.ck.Len() != 1 {
		t.Fatalf("shared store should hold the probe entry; store=%v", s.ck)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "ckpt_hits=1") || !strings.Contains(logs, "ckpt_misses=1") {
		t.Errorf("job done log line missing per-job checkpoint counters:\n%s", logs)
	}
}

// TestCheckpointDisabled asserts a negative CheckpointBytes turns the
// subsystem off end to end: no store, no context view, no metric family.
func TestCheckpointDisabled(t *testing.T) {
	e := bench.Experiment{
		ID: "ck0", Title: "no checkpoint", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			if checkpoint.FromContext(ctx) != nil {
				io.WriteString(w, "unexpected view\n")
				return
			}
			io.WriteString(w, "no view\n")
		},
	}
	s, ts := newTestServer(t, Config{Workers: 1, CheckpointBytes: -1, Lookup: lookupOf(e)})
	if s.ck != nil {
		t.Fatal("store built despite CheckpointBytes < 0")
	}
	st := submit(t, ts.URL, map[string]any{"id": "ck0", "quick": true})
	final := waitFinal(t, ts.URL, st.ID)
	if final.State != "done" || !strings.Contains(final.Result.Output, "no view") {
		t.Fatalf("disabled server still exposed a view: %+v", final)
	}
	if text := scrapeMetrics(t, ts.URL); strings.Contains(text, "prestored_checkpoint") {
		t.Errorf("checkpoint metric family rendered while disabled:\n%s", text)
	}
}
