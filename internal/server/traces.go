package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"prestores/internal/trace"
)

// DefaultTraceQuota bounds the content-addressed trace store (stored
// traces plus open upload buffers) when Config.TraceQuotaBytes is 0.
const DefaultTraceQuota = 1 << 30

// maxUploadPart bounds one upload request body; bigger traces arrive
// as multiple resumable parts.
const maxUploadPart = 64 << 20

// maxOpenUploads bounds concurrently open resumable uploads.
const maxOpenUploads = 64

// TraceInfo describes one stored trace on the wire.
type TraceInfo struct {
	Address string    `json:"address"`
	Bytes   int64     `json:"bytes"`
	Chunks  int       `json:"chunks"`
	Records uint64    `json:"records"`
	Created time.Time `json:"created"`
}

type storedTrace struct {
	info TraceInfo
	data []byte
}

type upload struct {
	id      string
	buf     []byte
	created time.Time
}

// traceStore is the quota-bounded, content-addressed home of uploaded
// recordings. Addresses are the SHA-256 of the trace bytes, so
// re-uploading an identical recording lands on the same entry — and
// the analysis cache key derived from the address stays stable.
type traceStore struct {
	mu      sync.Mutex
	quota   int64
	used    int64 // stored traces + open upload buffers
	traces  map[string]*storedTrace
	uploads map[string]*upload
	useq    uint64
}

func newTraceStore(quota int64) *traceStore {
	if quota <= 0 {
		quota = DefaultTraceQuota
	}
	return &traceStore{
		quota:   quota,
		traces:  make(map[string]*storedTrace),
		uploads: make(map[string]*upload),
	}
}

func traceAddress(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validate walks every chunk of the encoded trace (v1 or v2) so a
// corrupt upload is rejected at commit time, not at analysis time.
func validateTrace(data []byte) (chunks int, records uint64, err error) {
	cr, err := trace.NewChunkReader(bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	for {
		c, err := cr.Next()
		if err == io.EOF {
			return chunks, records, nil
		}
		if err != nil {
			return 0, 0, err
		}
		chunks++
		records += uint64(len(c.Records))
	}
}

type storeError struct {
	code int
	msg  string
}

func (e *storeError) Error() string { return e.msg }

func storeErrf(code int, format string, args ...any) *storeError {
	return &storeError{code: code, msg: fmt.Sprintf(format, args...)}
}

// put stores a complete encoded trace, validating it first.
func (ts *traceStore) put(data []byte) (TraceInfo, error) {
	chunks, records, err := validateTrace(data)
	if err != nil {
		return TraceInfo{}, storeErrf(http.StatusBadRequest, "invalid trace: %v", err)
	}
	addr := traceAddress(data)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st, ok := ts.traces[addr]; ok {
		return st.info, nil
	}
	if ts.used+int64(len(data)) > ts.quota {
		return TraceInfo{}, storeErrf(http.StatusRequestEntityTooLarge,
			"trace store quota exceeded (%d of %d bytes used)", ts.used, ts.quota)
	}
	st := &storedTrace{
		info: TraceInfo{
			Address: addr, Bytes: int64(len(data)),
			Chunks: chunks, Records: records, Created: time.Now().UTC(),
		},
		data: data,
	}
	ts.traces[addr] = st
	ts.used += int64(len(data))
	return st.info, nil
}

func (ts *traceStore) begin() (string, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.uploads) >= maxOpenUploads {
		return "", storeErrf(http.StatusTooManyRequests,
			"too many open uploads (%d); commit or abort one first", len(ts.uploads))
	}
	ts.useq++
	id := fmt.Sprintf("up-%d", ts.useq)
	ts.uploads[id] = &upload{id: id, created: time.Now().UTC()}
	return id, nil
}

// appendPart appends data at offset. A stale retry whose bytes are
// already present is acknowledged idempotently; any other offset
// mismatch returns 409 with the current offset so the client can
// resume exactly where the server is.
func (ts *traceStore) appendPart(id string, offset int64, data []byte) (int64, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	up, ok := ts.uploads[id]
	if !ok {
		return 0, storeErrf(http.StatusNotFound, "unknown upload %q", id)
	}
	cur := int64(len(up.buf))
	if offset != cur {
		if offset < cur && offset+int64(len(data)) <= cur {
			return cur, nil // duplicate of bytes we already have
		}
		return cur, storeErrf(http.StatusConflict,
			"upload %s is at offset %d, not %d; resume from %d", id, cur, offset, cur)
	}
	if ts.used+int64(len(data)) > ts.quota {
		return cur, storeErrf(http.StatusRequestEntityTooLarge,
			"trace store quota exceeded (%d of %d bytes used)", ts.used, ts.quota)
	}
	up.buf = append(up.buf, data...)
	ts.used += int64(len(data))
	return int64(len(up.buf)), nil
}

// commit validates the assembled upload and moves it into the store.
func (ts *traceStore) commit(id string) (TraceInfo, error) {
	ts.mu.Lock()
	up, ok := ts.uploads[id]
	if ok {
		delete(ts.uploads, id)
		ts.used -= int64(len(up.buf))
	}
	ts.mu.Unlock()
	if !ok {
		return TraceInfo{}, storeErrf(http.StatusNotFound, "unknown upload %q", id)
	}
	return ts.put(up.buf)
}

func (ts *traceStore) abort(id string) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	up, ok := ts.uploads[id]
	if !ok {
		return storeErrf(http.StatusNotFound, "unknown upload %q", id)
	}
	delete(ts.uploads, id)
	ts.used -= int64(len(up.buf))
	return nil
}

func (ts *traceStore) get(addr string) ([]byte, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.traces[addr]
	if !ok {
		return nil, false
	}
	return st.data, true
}

func (ts *traceStore) info(addr string) (TraceInfo, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.traces[addr]
	if !ok {
		return TraceInfo{}, false
	}
	return st.info, true
}

func (ts *traceStore) remove(addr string) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.traces[addr]
	if !ok {
		return false
	}
	delete(ts.traces, addr)
	ts.used -= int64(len(st.data))
	return true
}

func (ts *traceStore) list() []TraceInfo {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceInfo, 0, len(ts.traces))
	for _, st := range ts.traces {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address < out[j].Address })
	return out
}

func (ts *traceStore) usage() (used int64, stored int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.used, len(ts.traces)
}

// ---- HTTP handlers ----

func writeStoreError(w http.ResponseWriter, err error) {
	if se, ok := err.(*storeError); ok {
		writeError(w, se.code, "%s", se.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

func readPart(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUploadPart+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	if len(data) > maxUploadPart {
		writeError(w, http.StatusRequestEntityTooLarge,
			"upload part exceeds %d bytes; split it into resumable parts", maxUploadPart)
		return nil, false
	}
	return data, true
}

// handleTracePost ingests a recording. The plain form takes the whole
// encoded trace as the body; ?resume=1 opens a resumable upload whose
// parts arrive via PUT /v1/traces/uploads/{id}?offset=N, mirroring the
// offset-resume contract of the job streams.
func (s *Server) handleTracePost(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("resume"); v == "1" || v == "true" {
		id, err := s.traces.begin()
		if err != nil {
			writeStoreError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"upload": id, "offset": 0})
		return
	}
	data, ok := readPart(w, r)
	if !ok {
		return
	}
	info, err := s.traces.put(data)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	s.m.traceUploads.Add(1)
	s.m.traceUploadBytes.Add(info.Bytes)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleTraceUploadPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var offset int64
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q (want a non-negative integer)", v)
			return
		}
		offset = n
	}
	data, ok := readPart(w, r)
	if !ok {
		return
	}
	newOff, err := s.traces.appendPart(id, offset, data)
	if err != nil {
		if se, ok := err.(*storeError); ok && se.code == http.StatusConflict {
			// 409 carries the current offset so the client resumes
			// without a second round trip.
			writeJSON(w, http.StatusConflict, map[string]any{"error": se.msg, "upload": id, "offset": newOff})
			return
		}
		writeStoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"upload": id, "offset": newOff})
}

func (s *Server) handleTraceUploadCommit(w http.ResponseWriter, r *http.Request) {
	info, err := s.traces.commit(r.PathValue("id"))
	if err != nil {
		writeStoreError(w, err)
		return
	}
	s.m.traceUploads.Add(1)
	s.m.traceUploadBytes.Add(info.Bytes)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleTraceUploadAbort(w http.ResponseWriter, r *http.Request) {
	if err := s.traces.abort(r.PathValue("id")); err != nil {
		writeStoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "aborted"})
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.list())
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("address")
	data, ok := s.traces.get(addr)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace %q; GET /v1/traces lists them", addr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("address")
	if !s.traces.remove(addr) {
		writeError(w, http.StatusNotFound, "unknown trace %q", addr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}
