package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"prestores/internal/autotune"
	"prestores/internal/bench"
	"prestores/internal/scenario"
	"prestores/internal/sim"
)

// evalSpec is the POST /v1/eval body: a single-point scenario spec
// (no sweep axes, exactly one op) evaluated to raw metrics instead of
// a rendered table. This is the autotuner's distributed measurement
// primitive — the cluster coordinator routes candidate plans here.
type evalSpec struct {
	Spec  json.RawMessage `json:"spec"`
	Quick bool            `json:"quick"`
}

func (s *Server) handleSubmitEval(w http.ResponseWriter, r *http.Request) {
	var body evalSpec
	if !decodeBody(w, r, &body) {
		return
	}
	if len(body.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "spec: required (a single-point scenario spec object)")
		return
	}
	sp, err := scenario.Decode(body.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	if err := sp.CheckSinglePoint(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid eval spec: %v", err)
		return
	}
	canon, err := sp.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	key := evalSpec{Spec: canon, Quick: body.Quick}
	st, j, err := s.submit("eval", key, !streamRequested(r), parentFrom(r), s.evalRun(sp, body.Quick))
	s.respondSubmit(w, r, st, j, err)
}

// evalRun builds the run function for an eval job. The result's Output
// is exactly the metrics map as canonical JSON (sorted keys) plus a
// newline — machine-consumable, byte-stable, cache-friendly.
func (s *Server) evalRun(sp scenario.Spec, quick bool) func(context.Context, *job) bench.Result {
	name := sp.Workload.Name
	return analysisRun("eval/"+name, "single-point evaluation of "+name, s.cfg.JobTimeout,
		func(ctx context.Context, _ *job, out *bytes.Buffer) error {
			m, err := sp.EvalPoint(ctx, quick)
			if err != nil {
				return err
			}
			b, err := json.Marshal(m)
			if err != nil {
				return err
			}
			out.Write(b)
			out.WriteByte('\n')
			return nil
		})
}

// autotuneSpec is the POST /v1/autotune body: the base single-point
// spec plus the search parameters (inlined; see autotune.Params).
type autotuneSpec struct {
	Spec json.RawMessage `json:"spec"`
	autotune.Params
}

// autotuneKey is the cache-key form: canonical spec bytes and the
// normalized parameters with Parallel zeroed — the search result is
// independent of evaluation concurrency, so requests differing only in
// parallelism share one cache entry.
type autotuneKey struct {
	Spec   json.RawMessage `json:"spec"`
	Params autotune.Params `json:"params"`
}

func (s *Server) handleSubmitAutotune(w http.ResponseWriter, r *http.Request) {
	var body autotuneSpec
	if !decodeBody(w, r, &body) {
		return
	}
	if len(body.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "spec: required (a single-point scenario spec object; the search varies policy.window and policy.table)")
		return
	}
	sp, err := scenario.Decode(body.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	par, err := autotune.Normalize(&sp, body.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid autotune request: %v", err)
		return
	}
	canon, err := sp.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	keyPar := par
	keyPar.Parallel = 0
	key := autotuneKey{Spec: canon, Params: keyPar}
	st, j, err := s.submit("autotune", key, !streamRequested(r), parentFrom(r), s.autotuneRun(sp, par))
	s.respondSubmit(w, r, st, j, err)
}

// autotuneRun builds the run function for an autotuning search job.
// Unlike analysisRun it streams as it goes: each NDJSON progress event
// the engine emits reaches the job's progress log (and any attached
// stream) immediately, not at job completion. The full trajectory and
// the winner summary become job artifacts.
func (s *Server) autotuneRun(sp scenario.Spec, par autotune.Params) func(context.Context, *job) bench.Result {
	name := sp.Workload.Name
	return func(ctx context.Context, j *job) bench.Result {
		if s.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer cancel()
		}
		var ops sim.OpsCounter
		ctx = sim.WithOpsSink(ctx, &ops)
		var out bytes.Buffer
		progress := io.MultiWriter(&out, j.out)
		start := time.Now()

		errText := func() (errText string) {
			defer func() {
				if r := recover(); r != nil {
					errText = fmt.Sprintf("panic: %v", r)
				}
			}()
			res, err := autotune.Run(ctx, sp, par, s.evaluator(), progress)
			if err != nil {
				return err.Error()
			}
			traj, err := res.Trajectory.JSON()
			if err != nil {
				return err.Error()
			}
			j.setArtifact("trajectory", traj)
			winner, err := json.MarshalIndent(res.Trajectory.Winner, "", "  ")
			if err != nil {
				return err.Error()
			}
			j.setArtifact("winner", append(winner, '\n'))
			s.m.autotuneSearches.Add(1)
			s.m.autotuneEvals.Add(int64(res.Trajectory.Evals))
			if res.Trajectory.Converged {
				s.m.autotuneConverged.Add(1)
			}
			return ""
		}()

		res := bench.Result{ID: "autotune/" + name, Title: "autotuning search over " + name, Err: errText}
		res.WallTime = time.Since(start)
		res.SimOps = ops.Total()
		if sec := res.WallTime.Seconds(); sec > 0 {
			res.SimOpsPerSec = float64(res.SimOps) / sec
		}
		res.Output = out.String()
		return res
	}
}

// evaluator returns the measurement backend autotune jobs use: the
// configured hook (the cluster coordinator injects a shard fan-out
// evaluator) or in-process evaluation.
func (s *Server) evaluator() autotune.Evaluator {
	if s.cfg.AutotuneEvaluator != nil {
		return s.cfg.AutotuneEvaluator
	}
	return autotune.Local{}
}
