package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func postRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// customScenario is a spec no named experiment covers: a preset machine
// with a patched (non-preset) PMEM read latency and non-default
// workload parameters. Small enough to run in unit tests.
const customScenario = `{
  "version": 1,
  "name": "custom-pmem",
  "title": "listing1 with a slow PMEM DIMM",
  "machine": {"preset": "machine-a", "devices": {"pmem": {"read_lat": 777}}},
  "workload": {"name": "listing1",
    "params": {"elem_size": 512, "threads": 1, "volume": 1048576, "reread": false, "seed": 5}},
  "policy": {
    "ops": ["none", "clean"],
    "columns": [
      {"title": "base amp", "op": "none", "metric": "write_amp", "format": "f2"},
      {"title": "clean amp", "op": "clean", "metric": "write_amp", "format": "f2"},
      {"title": "speedup", "op": "none", "metric": "elapsed", "den_op": "clean", "format": "x2"}
    ]
  }
}`

// customScenarioReordered is the same scenario with its object keys in
// a different order and different whitespace: canonicalization must map
// it to the same cache entry.
const customScenarioReordered = `{
  "workload": {"params": {"seed": 5, "volume": 1048576, "reread": false, "threads": 1, "elem_size": 512},
    "name": "listing1"},
  "policy": {
    "columns": [
      {"title": "base amp", "metric": "write_amp", "op": "none", "format": "f2"},
      {"format": "f2", "title": "clean amp", "op": "clean", "metric": "write_amp"},
      {"title": "speedup", "den_op": "clean", "op": "none", "metric": "elapsed", "format": "x2"}
    ],
    "ops": ["none", "clean"]
  },
  "machine": {"devices": {"pmem": {"read_lat": 777}}, "preset": "machine-a"},
  "title": "listing1 with a slow PMEM DIMM",
  "name": "custom-pmem",
  "version": 1
}`

func TestScenarioSubmitRunsAndCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, data := postRaw(t, ts.URL+"/v1/scenarios",
		`{"spec": `+customScenario+`, "quick": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (want 202): %s", code, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("scenario job did not finish cleanly: %+v", st)
	}
	out := st.Result.Output
	for _, want := range []string{"=== custom-pmem: listing1 with a slow PMEM DIMM ===",
		"base amp", "clean amp", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Resubmitting the same scenario — keys reordered, different
	// whitespace — must be a cache hit on the canonicalized spec.
	code, data = postRaw(t, ts.URL+"/v1/scenarios",
		`{"spec": `+customScenarioReordered+`, "quick": true}`)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d (want 200 cache hit): %s", code, data)
	}
	var second JobStatus
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Result == nil {
		t.Fatalf("resubmit not served from cache: %+v", second)
	}
	if second.Result.Output != out {
		t.Fatalf("cached output differs:\n got: %q\nwant: %q", second.Result.Output, out)
	}

	// quick=false is different work: not a cache hit.
	code, data = postRaw(t, ts.URL+"/v1/scenarios",
		`{"spec": `+customScenario+`, "quick": false}`)
	if code != http.StatusAccepted {
		t.Fatalf("full-mode submit: status %d (want 202): %s", code, data)
	}
	var third JobStatus
	if err := json.Unmarshal(data, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatalf("full-mode submit served from quick cache: %+v", third)
	}
	waitFinal(t, ts.URL, third.ID)
}

func TestScenarioSubmitRejectsInvalidSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, body, wantErr string
	}{
		{"missing spec", `{"quick": true}`, "spec: required"},
		{"bad version", `{"spec": {"version": 9}}`, "version: must be 1"},
		{"unknown workload param",
			`{"spec": {"version": 1, "machine": {"preset": "machine-a"},
			  "workload": {"name": "listing1", "params": {"volumez": 1}},
			  "policy": {"ops": ["none"], "columns": [{"title": "amp", "op": "none", "metric": "write_amp"}]}}}`,
			"workload.params.volumez"},
		{"bad device patch",
			`{"spec": {"version": 1, "machine": {"preset": "machine-a", "devices": {"pmem": {"read_lat": -4}}},
			  "workload": {"name": "listing1"},
			  "policy": {"ops": ["none"], "columns": [{"title": "amp", "op": "none", "metric": "write_amp"}]}}}`,
			"machine.devices.pmem.read_lat"},
		{"unknown spec field",
			`{"spec": {"version": 1, "machina": {}}}`, "machina"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postRaw(t, ts.URL+"/v1/scenarios", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d (want 400): %s", code, data)
			}
			var body map[string]string
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(body["error"], tc.wantErr) {
				t.Errorf("error %q does not name %q", body["error"], tc.wantErr)
			}
		})
	}
}

func TestRegistryListsAllBuildingBlocks(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/registry: status %d", resp.StatusCode)
	}
	var reg registryResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}

	var machines []string
	for _, p := range reg.Machines {
		machines = append(machines, p.Name)
	}
	wantMachines := []string{"machine-a", "machine-b-fast", "machine-b-slow", "machine-c"}
	if len(machines) != len(wantMachines) {
		t.Fatalf("machines = %v, want %v", machines, wantMachines)
	}
	for i, m := range wantMachines {
		if machines[i] != m {
			t.Fatalf("machines = %v, want %v", machines, wantMachines)
		}
	}

	wantKinds := []string{"cxlssd", "dram", "pmem", "remote"}
	if len(reg.Devices.Kinds) != len(wantKinds) {
		t.Fatalf("device kinds = %v, want %v", reg.Devices.Kinds, wantKinds)
	}
	if len(reg.Devices.Params) == 0 {
		t.Fatal("no device params listed")
	}

	wantWorkloads := []string{"btree", "listing1", "listing2", "listing3",
		"nas", "phoronix", "sites", "tensor-train", "x9", "ycsb"}
	byName := map[string]registryWorkload{}
	for _, w := range reg.Workloads {
		byName[w.Name] = w
	}
	for _, name := range wantWorkloads {
		w, ok := byName[name]
		if !ok {
			t.Errorf("workload %s missing from registry", name)
			continue
		}
		if len(w.Ops) == 0 || len(w.Metrics) == 0 {
			t.Errorf("workload %s listing incomplete: %+v", name, w)
		}
	}
	// Site-bearing workloads must advertise their pre-store sites — the
	// dimensions POST /v1/autotune searches over.
	if got := byName["sites"].Sites; len(got) != 2 || got[0] != "hot" || got[1] != "once" {
		t.Errorf("sites workload sites = %v, want [hot once]", got)
	}
	if got := byName["ycsb"].Sites; len(got) != 1 || got[0] != "craft" {
		t.Errorf("ycsb workload sites = %v, want [craft]", got)
	}
	if len(reg.Workloads) != len(wantWorkloads) {
		t.Errorf("registry lists %d workloads, want %d: %+v", len(reg.Workloads), len(wantWorkloads), byName)
	}

	wantStores := []string{"clht", "masstree"}
	if len(reg.Stores) != len(wantStores) || reg.Stores[0] != "clht" || reg.Stores[1] != "masstree" {
		t.Errorf("stores = %v, want %v", reg.Stores, wantStores)
	}

	if len(reg.Formats) == 0 {
		t.Error("no column formats listed")
	}
	wantSpecs := []string{"ext-cxlssd", "ext-seqlog", "fig3", "fig5", "skipvsclean", "x9"}
	if len(reg.Specs) != len(wantSpecs) {
		t.Fatalf("spec experiments = %v, want %v", reg.Specs, wantSpecs)
	}
	for i, id := range wantSpecs {
		if reg.Specs[i] != id {
			t.Fatalf("spec experiments = %v, want %v", reg.Specs, wantSpecs)
		}
	}
}
