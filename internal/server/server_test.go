package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/sim"
)

// synthExperiment is a fast fake experiment: prints body, no simulation.
func synthExperiment(id, body string) bench.Experiment {
	return bench.Experiment{
		ID: id, Title: "synthetic " + id, Paper: "n/a",
		Run: func(_ context.Context, w io.Writer, quick bool) {
			fmt.Fprintf(w, "%s quick=%v\n", body, quick)
		},
	}
}

// lookupOf builds a Config.Lookup over the given experiments.
func lookupOf(exps ...bench.Experiment) func(string) (bench.Experiment, bool) {
	m := map[string]bench.Experiment{}
	for _, e := range exps {
		m[e.ID] = e
	}
	return func(id string) (bench.Experiment, bool) { e, ok := m[id]; return e, ok }
}

// synthWorkload is a tiny DirtBuster-analyzable workload: a sequential
// never-re-read writer, cheap enough for unit tests.
func synthWorkload() dirtbuster.Workload {
	return dirtbuster.Workload{
		Name:       "synthwl",
		NewMachine: sim.MachineA,
		Run: func(m *sim.Machine) {
			c := m.Core(0)
			c.PushFunc("synthwl.write")
			buf := make([]byte, 1024)
			for i := uint64(0); i < 300; i++ {
				c.Write(1<<40+i*1024, buf)
			}
			c.PopFunc()
		},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitFinal polls a job until it reaches a final state.
func waitFinal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	// Generous upper bound only: the race detector slows the autotune
	// search well past what the plain tests need.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getJob(t, base, id)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func submit(t *testing.T, base string, body any) JobStatus {
	t.Helper()
	code, data := postJSON(t, base+"/v1/experiments", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestExperimentJobMatchesRunOne(t *testing.T) {
	e := synthExperiment("e1", "hello rows")
	_, ts := newTestServer(t, Config{Workers: 2, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "e1", "quick": true})
	if st.State != "queued" && st.State != "running" {
		t.Fatalf("fresh submit state = %q", st.State)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", st)
	}

	var want bytes.Buffer
	if err := bench.RunOne(context.Background(), &want, e, true); err != nil {
		t.Fatal(err)
	}
	if st.Result.Output != want.String() {
		t.Fatalf("server output differs from RunOne:\n got: %q\nwant: %q", st.Result.Output, want.String())
	}
	if st.Result.WallTime <= 0 {
		t.Fatalf("missing wall time: %+v", st.Result)
	}
}

func TestCacheHitSkipsSecondRun(t *testing.T) {
	var runs atomic.Int64
	e := bench.Experiment{ID: "counted", Title: "counts runs", Paper: "n/a",
		Run: func(_ context.Context, w io.Writer, _ bool) {
			runs.Add(1)
			fmt.Fprintln(w, "counted body")
		}}
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	first := submit(t, ts.URL, map[string]any{"id": "counted", "quick": true})
	first = waitFinal(t, ts.URL, first.ID)
	if first.State != "done" {
		t.Fatalf("first run: %+v", first)
	}

	code, data := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"id": "counted", "quick": true})
	if code != http.StatusOK {
		t.Fatalf("cached submit: status %d (want 200): %s", code, data)
	}
	var second JobStatus
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Result == nil {
		t.Fatalf("second submit not served from cache: %+v", second)
	}
	if second.Result.Output != first.Result.Output {
		t.Fatalf("cached output differs:\n got: %q\nwant: %q", second.Result.Output, first.Result.Output)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("experiment ran %d times, want 1", n)
	}

	// A different spec (quick=false) is a different cache key.
	third := submit(t, ts.URL, map[string]any{"id": "counted", "quick": false})
	if third.Cached {
		t.Fatalf("different spec served from cache: %+v", third)
	}
	waitFinal(t, ts.URL, third.ID)
	if n := runs.Load(); n != 2 {
		t.Fatalf("experiment ran %d times after distinct spec, want 2", n)
	}
}

func TestCoalesceConcurrentIdenticalSubmits(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := bench.Experiment{ID: "slow", Title: "holds its worker", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			close(started)
			select {
			case <-release:
				fmt.Fprintln(w, "slow body")
			case <-ctx.Done():
			}
		}}
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	first := submit(t, ts.URL, map[string]any{"id": "slow", "quick": true})
	<-started
	second := submit(t, ts.URL, map[string]any{"id": "slow", "quick": true})
	if !second.Coalesced || second.ID != first.ID {
		t.Fatalf("identical in-flight submit not coalesced: first=%+v second=%+v", first, second)
	}
	close(release)
	st := waitFinal(t, ts.URL, first.ID)
	if st.State != "done" || !strings.Contains(st.Result.Output, "slow body") {
		t.Fatalf("coalesced job result: %+v", st)
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blocker := func(id string) bench.Experiment {
		return bench.Experiment{ID: id, Title: "blocker " + id, Paper: "n/a",
			Run: func(ctx context.Context, w io.Writer, _ bool) {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
				}
			}}
	}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		Lookup: lookupOf(blocker("b1"), blocker("b2"), blocker("b3")),
	})

	first := submit(t, ts.URL, map[string]any{"id": "b1", "quick": true})
	<-started // b1 occupies the only worker; the queue is empty
	second := submit(t, ts.URL, map[string]any{"id": "b2", "quick": true})
	code, data := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"id": "b3", "quick": true})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue: status %d (want 429): %s", code, data)
	}
	if !strings.Contains(string(data), "queue full") {
		t.Fatalf("429 body: %s", data)
	}
	close(release)
	waitFinal(t, ts.URL, first.ID)
	waitFinal(t, ts.URL, second.ID)
}

// readEvents decodes a full NDJSON stream.
func readEvents(t *testing.T, r io.Reader) []streamEvent {
	t.Helper()
	var evs []streamEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestStreamDeliversOutputAndResult(t *testing.T) {
	e := synthExperiment("es", "streamed rows")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	body, _ := json.Marshal(map[string]any{"id": "es", "quick": true})
	resp, err := http.Post(ts.URL+"/v1/experiments?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	evs := readEvents(t, resp.Body)
	if len(evs) < 3 || evs[0].Event != "status" || evs[len(evs)-1].Event != "done" {
		t.Fatalf("stream shape wrong: %+v", evs)
	}
	var streamed strings.Builder
	for _, ev := range evs {
		if ev.Event == "output" {
			streamed.WriteString(ev.Data)
		}
	}
	final := evs[len(evs)-1]
	if final.Job == nil || final.Job.State != "done" || final.Job.Result == nil {
		t.Fatalf("done event malformed: %+v", final)
	}
	var want bytes.Buffer
	bench.RunOne(context.Background(), &want, e, true)
	if streamed.String() != want.String() {
		t.Fatalf("streamed output differs from RunOne:\n got: %q\nwant: %q", streamed.String(), want.String())
	}
	if final.Job.Result.Output != want.String() {
		t.Fatalf("final result output differs: %q", final.Job.Result.Output)
	}
}

// TestStreamOffsetReplay proves ?offset=N resumes a stream at byte N
// of the job's output — the reconnect contract the remote client and
// the cluster coordinator rely on to never duplicate output bytes.
func TestStreamOffsetReplay(t *testing.T) {
	e := synthExperiment("eo", "offset rows")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "eo", "quick": true})
	st = waitFinal(t, ts.URL, st.ID)
	full := st.Result.Output
	if len(full) < 4 {
		t.Fatalf("output too short to split: %q", full)
	}
	cut := len(full) / 2

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?offset=%d", ts.URL, st.ID, cut))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var replayed strings.Builder
	for _, ev := range readEvents(t, resp.Body) {
		if ev.Event == "output" {
			replayed.WriteString(ev.Data)
		}
	}
	if replayed.String() != full[cut:] {
		t.Fatalf("offset %d replayed %q, want %q", cut, replayed.String(), full[cut:])
	}

	// An offset at (or past) the end replays nothing but still
	// delivers the done event.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?offset=%d", ts.URL, st.ID, len(full)+10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	evs := readEvents(t, resp2.Body)
	for _, ev := range evs {
		if ev.Event == "output" {
			t.Fatalf("past-the-end offset replayed output: %+v", ev)
		}
	}
	if evs[len(evs)-1].Event != "done" {
		t.Fatalf("stream did not finish with done: %+v", evs)
	}

	// Bad offsets are rejected before the stream starts.
	for _, bad := range []string{"-1", "x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream?offset=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("offset=%s: status %d (want 400)", bad, resp.StatusCode)
		}
	}
}

// TestStreamDisconnectCancelsJob proves a hung-up client stops the
// simulation: the job's context is cancelled, the run function returns
// (no leaked worker), and the job lands in state cancelled.
func TestStreamDisconnectCancelsJob(t *testing.T) {
	started := make(chan struct{})
	returned := make(chan struct{})
	e := bench.Experiment{ID: "eb", Title: "runs until cancelled", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			fmt.Fprintln(w, "begin")
			close(started)
			<-ctx.Done() // a sweep loop parked at an iteration boundary
			close(returned)
		}}
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e, synthExperiment("after", "worker is free"))})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(map[string]any{"id": "eb", "quick": true})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/experiments?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the status event to learn the job ID, then hang up.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var ev streamEvent
	if err := json.Unmarshal(line, &ev); err != nil || ev.Job == nil {
		t.Fatalf("first stream line %q: %v", line, err)
	}
	<-started
	cancel()

	select {
	case <-returned:
	case <-time.After(10 * time.Second):
		t.Fatal("experiment still running 10s after client disconnect (leaked worker)")
	}
	st := waitFinal(t, ts.URL, ev.Job.ID)
	if st.State != "cancelled" {
		t.Fatalf("abandoned job state = %q, want cancelled", st.State)
	}
	// The worker is free again: an unrelated job completes.
	st = submit(t, ts.URL, map[string]any{"id": "after", "quick": true})
	if st = waitFinal(t, ts.URL, st.ID); st.State != "done" {
		t.Fatalf("job after disconnect: %+v", st)
	}
}

func TestCancelEndpoint(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	running := bench.Experiment{ID: "run", Title: "running victim", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
		}}
	queued := synthExperiment("queued", "never ran")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(running, queued)})

	first := submit(t, ts.URL, map[string]any{"id": "run", "quick": true})
	<-started
	second := submit(t, ts.URL, map[string]any{"id": "queued", "quick": true})

	del := func(id string) JobStatus {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Cancelling a queued job finalizes it without ever running it.
	if st := del(second.ID); st.State != "cancelled" {
		t.Fatalf("cancelled queued job state = %q", st.State)
	}
	// Cancelling the running job stops it cooperatively.
	del(first.ID)
	if st := waitFinal(t, ts.URL, first.ID); st.State != "cancelled" {
		t.Fatalf("cancelled running job state = %q", st.State)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	e := synthExperiment("m1", "metric rows")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "m1", "quick": true})
	waitFinal(t, ts.URL, st.ID)
	submit(t, ts.URL, map[string]any{"id": "m1", "quick": true}) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"prestored_jobs_completed_total 1",
		"prestored_cache_hits_total 1",
		"prestored_cache_misses_total 1",
		"prestored_cache_hit_ratio 0.5",
		"prestored_queue_capacity",
		"prestored_jobs_running 0",
		"prestored_sim_ops_total",
		"prestored_sim_ops_per_second",
		// The warm-state checkpoint store is on by default; its family
		// renders even before any KV sweep touches it.
		"prestored_checkpoint_hits_total 0",
		"prestored_checkpoint_misses_total 0",
		"prestored_checkpoint_store_bytes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	e := synthExperiment("d1", "drained")
	s, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "d1", "quick": true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	// The in-flight job completed rather than being killed.
	if got := waitFinal(t, ts.URL, st.ID); got.State != "done" {
		t.Fatalf("job state after drain = %q", got.State)
	}
	// New submits are refused, health reports draining.
	code, _ := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"id": "d1", "quick": true})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d (want 503)", code)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: status %d (want 503)", hz.StatusCode)
	}
}

func TestShutdownDeadlineCancelsStuckJobs(t *testing.T) {
	e := bench.Experiment{ID: "stuck", Title: "waits for cancellation", Paper: "n/a",
		Run: func(ctx context.Context, w io.Writer, _ bool) {
			<-ctx.Done()
		}}
	s := New(Config{Workers: 1, Lookup: lookupOf(e)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, map[string]any{"id": "stuck", "quick": true})
	waitRunning := time.Now().Add(5 * time.Second)
	for getJob(t, ts.URL, st.ID).State != "running" {
		if time.Now().After(waitRunning) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown returned %v, want deadline exceeded", err)
	}
	if got := getJob(t, ts.URL, st.ID); got.State != "cancelled" {
		t.Fatalf("stuck job state after forced shutdown = %q", got.State)
	}
}

func TestDirtbusterEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:   1,
		Workloads: func(bool) []dirtbuster.Workload { return []dirtbuster.Workload{synthWorkload()} },
	})
	code, data := postJSON(t, ts.URL+"/v1/dirtbuster", map[string]any{"workload": "synthwl", "quick": true})
	if code != http.StatusAccepted {
		t.Fatalf("dirtbuster submit: status %d: %s", code, data)
	}
	var st JobStatus
	json.Unmarshal(data, &st)
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" || !strings.Contains(st.Result.Output, "synthwl") {
		t.Fatalf("dirtbuster job: %+v", st)
	}

	code, data = postJSON(t, ts.URL+"/v1/dirtbuster", map[string]any{"workload": "nope", "quick": true})
	if code != http.StatusNotFound {
		t.Fatalf("unknown workload: status %d: %s", code, data)
	}
}

func TestTraceEndpointModes(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:   1,
		Workloads: func(bool) []dirtbuster.Workload { return []dirtbuster.Workload{synthWorkload()} },
	})
	for mode, want := range map[string]string{
		"report":  "synthwl.write",
		"pmcheck": "pmcheck:",
		"":        "synthwl", // default dirtbuster report
	} {
		code, data := postJSON(t, ts.URL+"/v1/trace", map[string]any{"workload": "synthwl", "mode": mode})
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("trace mode %q: status %d: %s", mode, code, data)
		}
		var st JobStatus
		json.Unmarshal(data, &st)
		st = waitFinal(t, ts.URL, st.ID)
		if st.State != "done" || !strings.Contains(st.Result.Output, want) {
			t.Fatalf("trace mode %q: %+v", mode, st)
		}
	}
	// An unknown mode fails the job, not the daemon.
	code, data := postJSON(t, ts.URL+"/v1/trace", map[string]any{"workload": "synthwl", "mode": "bogus"})
	if code != http.StatusAccepted {
		t.Fatalf("bogus mode submit: status %d: %s", code, data)
	}
	var st JobStatus
	json.Unmarshal(data, &st)
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "failed" || !strings.Contains(st.Error, "unknown trace mode") {
		t.Fatalf("bogus trace mode job: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, _ := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"id": "no-such-experiment"})
	if code != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d (want 404)", code)
	}
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d (want 400)", resp.StatusCode)
	}
	if _, err := http.Get(ts.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	}
	code, _ = postJSON(t, ts.URL+"/v1/trace", map[string]any{"workload": "listing1", "mode": "report", "pm_base": 1 << 40})
	if code != http.StatusAccepted && code != http.StatusOK && code != http.StatusNotFound {
		t.Fatalf("trace submit: status %d", code)
	}
}

func TestListEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []struct{ ID, Title, Paper string }
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("experiment listing empty")
	}
	wl, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer wl.Body.Close()
	var names []string
	if err := json.NewDecoder(wl.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("workload listing empty")
	}
}
