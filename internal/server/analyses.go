package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/obs"
	"prestores/internal/trace"
)

// ChunkAnalyzer is how an analysis job maps one chunk: in process by
// default, or fanned out across worker shards when the cluster
// coordinator injects its own implementation. Both phases are pure
// functions of the chunk (plus the plan), so the caller may invoke
// them concurrently and in any order; the driver below still applies
// partials in deterministic chunk order, which is what keeps the
// sharded report byte-identical to the monolithic one.
type ChunkAnalyzer interface {
	// Stats computes the pass-1 aggregate of one chunk.
	Stats(ctx context.Context, c *trace.Chunk) (*dirtbuster.Stats, error)
	// Partial computes the pass-2 tape of one chunk under plan.
	Partial(ctx context.Context, plan *dirtbuster.Plan, c *trace.Chunk) (*dirtbuster.Partial, error)
	// Concurrency is how many chunks the caller should keep in flight.
	Concurrency() int
}

// localAnalyzer analyzes chunks in process. Concurrency 2 pipelines
// chunk decode against analysis without monopolizing the worker pool.
type localAnalyzer struct{}

func (localAnalyzer) Stats(_ context.Context, c *trace.Chunk) (*dirtbuster.Stats, error) {
	st := dirtbuster.NewStats()
	st.AddChunk(c)
	return st, nil
}

func (localAnalyzer) Partial(_ context.Context, plan *dirtbuster.Plan, c *trace.Chunk) (*dirtbuster.Partial, error) {
	return plan.AnalyzeChunk(c), nil
}

func (localAnalyzer) Concurrency() int { return 2 }

func (s *Server) analyzer() ChunkAnalyzer {
	if s.cfg.ChunkAnalyzer != nil {
		return s.cfg.ChunkAnalyzer
	}
	return localAnalyzer{}
}

// analysisSpec is the POST /v1/analyses body: run DirtBuster over a
// stored trace as a pipeline of chunk jobs. The trace address makes
// the spec — and therefore the job's cache key — content-addressed.
type analysisSpec struct {
	Trace    string            `json:"trace"`
	App      string            `json:"app,omitempty"`
	LineSize uint64            `json:"line_size,omitempty"`
	Config   dirtbuster.Config `json:"config"`
}

func (s *Server) handleSubmitAnalysis(w http.ResponseWriter, r *http.Request) {
	var spec analysisSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	info, ok := s.traces.info(spec.Trace)
	if !ok {
		writeError(w, http.StatusNotFound,
			"unknown trace %q; upload it first (POST /v1/traces) — GET /v1/traces lists stored traces", spec.Trace)
		return
	}
	// Canonicalize defaults before the spec becomes the cache key.
	if spec.App == "" {
		spec.App = "trace:" + shortAddr(spec.Trace)
	}
	if spec.LineSize == 0 {
		spec.LineSize = 64
	}
	st, j, err := s.submit("analysis", spec, !streamRequested(r), parentFrom(r), s.analysisJob(spec, info))
	s.respondSubmit(w, r, st, j, err)
}

func shortAddr(addr string) string {
	if len(addr) > 12 {
		return addr[:12]
	}
	return addr
}

// analysisJob builds the run function for a chunked analysis job: the
// two-pass map/reduce pipeline over the stored trace's chunks, with
// per-pass progress in the job stream and the rendered report as the
// result output.
func (s *Server) analysisJob(spec analysisSpec, info TraceInfo) func(context.Context, *job) bench.Result {
	id := "analysis/" + shortAddr(spec.Trace)
	title := fmt.Sprintf("chunked DirtBuster analysis of trace %s (%d chunks, %d records)",
		shortAddr(spec.Trace), info.Chunks, info.Records)
	return analysisRun(id, title, s.cfg.JobTimeout,
		func(ctx context.Context, j *job, out *bytes.Buffer) error {
			data, ok := s.traces.get(spec.Trace)
			if !ok {
				return fmt.Errorf("trace %s no longer in the store", spec.Trace)
			}
			rep, err := s.analyzeStored(ctx, j.out, data, spec)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, rep.Render())
			return nil
		})
}

// analyzeStored runs the two-pass chunk pipeline over one encoded
// trace. Pass 1 merges per-chunk Stats (orderless sums) into the step-1
// Plan; pass 2 maps chunks to Partials — concurrently, through the
// configured analyzer — and reduces them in chunk order, which keeps
// the report byte-identical to the monolithic path no matter how the
// chunk work was scheduled or which shard computed it.
func (s *Server) analyzeStored(ctx context.Context, progress io.Writer, data []byte, spec analysisSpec) (*dirtbuster.Report, error) {
	an := s.analyzer()
	conc := an.Concurrency()
	if conc < 1 {
		conc = 1
	}

	stats := dirtbuster.NewStats()
	nChunks, err := runChunks(ctx, data, conc,
		func(ctx context.Context, c *trace.Chunk) (*dirtbuster.Stats, error) {
			ctx, sp := obs.Start(ctx, "analysis.chunk", obs.KV("phase", "stats"))
			defer sp.End()
			return an.Stats(ctx, c)
		},
		func(_ int, st *dirtbuster.Stats) error {
			s.m.traceChunks.Add(1)
			stats.Merge(st)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("pass 1 (stats): %w", err)
	}
	plan := stats.Plan(spec.App, spec.LineSize, spec.Config)
	fmt.Fprintf(progress, "pass 1: %d chunks, %d records, store share %.3f, write-intensive=%v\n",
		nChunks, stats.Records, plan.StoreShare, plan.WriteIntensive)

	a := plan.NewAnalysis()
	if plan.WriteIntensive {
		applied, err := runChunks(ctx, data, conc,
			func(ctx context.Context, c *trace.Chunk) (*dirtbuster.Partial, error) {
				ctx, sp := obs.Start(ctx, "analysis.chunk", obs.KV("phase", "partial"))
				defer sp.End()
				return an.Partial(ctx, plan, c)
			},
			func(_ int, pt *dirtbuster.Partial) error {
				s.m.traceChunks.Add(1)
				return a.Apply(pt)
			})
		if err != nil {
			return nil, fmt.Errorf("pass 2 (partials): %w", err)
		}
		if applied != nChunks || a.Applied() != nChunks {
			return nil, fmt.Errorf("pass 2 applied %d of %d chunks", a.Applied(), nChunks)
		}
		fmt.Fprintf(progress, "pass 2: %d partials merged in chunk order\n", applied)
	}
	s.m.traceAnalyses.Add(1)
	return a.Report(), nil
}

// runChunks streams the trace's chunks through fn with conc in flight
// and hands results to deliver in strict chunk order (a bounded
// reorder buffer smooths out scheduling skew). The first error cancels
// everything.
func runChunks[T any](ctx context.Context, data []byte, conc int,
	fn func(context.Context, *trace.Chunk) (T, error),
	deliver func(int, T) error) (int, error) {

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type item struct {
		idx int
		c   *trace.Chunk
	}
	type res struct {
		idx int
		v   T
		err error
	}
	work := make(chan item, conc)
	results := make(chan res, conc)
	readErr := make(chan error, 1)

	go func() {
		defer close(work)
		cr, err := trace.NewChunkReader(bytes.NewReader(data))
		if err != nil {
			readErr <- err
			return
		}
		for idx := 0; ; idx++ {
			c, err := cr.Next()
			if err == io.EOF {
				readErr <- nil
				return
			}
			if err != nil {
				readErr <- err
				return
			}
			select {
			case work <- item{idx, c}:
			case <-ctx.Done():
				readErr <- ctx.Err()
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				v, err := fn(ctx, it.c)
				select {
				case results <- res{it.idx, v, err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]T, conc)
	next := 0
	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue
		}
		if r.err != nil {
			firstErr = fmt.Errorf("chunk %d: %w", r.idx, r.err)
			cancel()
			continue
		}
		pending[r.idx] = r.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := deliver(next, v); err != nil {
				firstErr = err
				cancel()
				break
			}
			next++
		}
	}
	if err := <-readErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return next, firstErr
	}
	return next, nil
}

// ---- chunk worker endpoint ----

// chunkJobHeader frames a POST /v1/analyses/chunks request: a u32
// little-endian header length, this JSON header, then the standalone
// chunk bytes (trace.EncodeChunk). The response is the Stats JSON or
// the binary Partial, by phase.
type chunkJobHeader struct {
	Phase string           `json:"phase"` // "stats" or "partial"
	Plan  *dirtbuster.Plan `json:"plan,omitempty"`
}

// handleAnalyzeChunk serves one synchronous chunk-analysis call — the
// primitive a coordinator fans out across shards. Calls are bounded by
// a semaphore sized to the worker pool so a burst cannot starve the
// job workers.
func (s *Server) handleAnalyzeChunk(w http.ResponseWriter, r *http.Request) {
	select {
	case s.chunkSem <- struct{}{}:
		defer func() { <-s.chunkSem }()
	case <-r.Context().Done():
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadPart+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxUploadPart {
		writeError(w, http.StatusRequestEntityTooLarge, "chunk request exceeds %d bytes", maxUploadPart)
		return
	}
	if len(body) < 4 {
		writeError(w, http.StatusBadRequest, "truncated chunk request")
		return
	}
	hdrLen := binary.LittleEndian.Uint32(body)
	if int(hdrLen) > len(body)-4 {
		writeError(w, http.StatusBadRequest, "chunk request header length %d exceeds body", hdrLen)
		return
	}
	var hdr chunkJobHeader
	if err := json.Unmarshal(body[4:4+hdrLen], &hdr); err != nil {
		writeError(w, http.StatusBadRequest, "bad chunk request header: %v", err)
		return
	}
	c, err := trace.DecodeChunk(bytes.NewReader(body[4+hdrLen:]))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad chunk payload: %v", err)
		return
	}
	s.m.traceChunks.Add(1)
	// A coordinator fanning out carries its analysis job's trace in the
	// traceparent header; the shard-side chunk work becomes a span in
	// that same trace, on this shard's store.
	ctx := r.Context()
	if sc, ok := obs.Extract(r.Header); ok {
		var sp *obs.ActiveSpan
		ctx = obs.ContextWithSpan(obs.ContextWithTracer(ctx, s.tracer), sc)
		ctx, sp = obs.Start(ctx, "analysis.chunk.remote", obs.KV("phase", hdr.Phase))
		defer sp.End()
	}
	switch hdr.Phase {
	case "stats":
		st, err := localAnalyzer{}.Stats(ctx, c)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case "partial":
		if hdr.Plan == nil {
			writeError(w, http.StatusBadRequest, "partial phase needs a plan")
			return
		}
		pt, err := localAnalyzer{}.Partial(ctx, hdr.Plan, c)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		var buf bytes.Buffer
		if err := pt.Encode(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, "encoding partial: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(buf.Bytes())
	default:
		writeError(w, http.StatusBadRequest, "unknown chunk phase %q (want stats or partial)", hdr.Phase)
	}
}

// EncodeChunkRequest frames a chunk-analysis request body for
// POST /v1/analyses/chunks; the cluster coordinator and tests share it.
func EncodeChunkRequest(hdr chunkJobHeader, c *trace.Chunk) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(hj)))
	buf.Write(l[:])
	buf.Write(hj)
	if err := trace.EncodeChunk(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// StatsChunkRequest frames a pass-1 request for one chunk.
func StatsChunkRequest(c *trace.Chunk) ([]byte, error) {
	return EncodeChunkRequest(chunkJobHeader{Phase: "stats"}, c)
}

// PartialChunkRequest frames a pass-2 request for one chunk.
func PartialChunkRequest(plan *dirtbuster.Plan, c *trace.Chunk) ([]byte, error) {
	return EncodeChunkRequest(chunkJobHeader{Phase: "partial", Plan: plan}, c)
}
