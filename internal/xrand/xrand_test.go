package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(42, 1), NewStream(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 collided %d/100 times", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nProperty(t *testing.T) {
	r := New(11)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(3)
	const n, iters = 8, 80000
	var counts [n]int
	for i := 0; i < iters; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(iters) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d != %d", got, sum)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(17), 1000, 0.99)
	for i := 0; i < 20000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("Zipf.Next() = %d >= n", v)
		}
		if v := z.ScrambledNext(); v >= 1000 {
			t.Fatalf("Zipf.ScrambledNext() = %d >= n", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(23), 10000, 0.99)
	const iters = 100000
	top := 0
	for i := 0; i < iters; i++ {
		if z.Next() < 10 {
			top++
		}
	}
	// With theta=0.99 over 10K items, the top-10 should receive a large
	// share (roughly ln(10)/ln(10000)-ish, far above uniform 0.1%).
	if share := float64(top) / iters; share < 0.15 {
		t.Errorf("top-10 share = %.3f, want >= 0.15 (heavily skewed)", share)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n     uint64
		theta float64
	}{{0, 0.99}, {10, 0}, {10, 1.0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.theta)
				}
			}()
			NewZipf(New(1), c.n, c.theta)
		}()
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0x1234567890abcdef)
	diffBits := 0
	for bit := uint(0); bit < 64; bit++ {
		h := Hash64(0x1234567890abcdef ^ 1<<bit)
		x := base ^ h
		for x != 0 {
			diffBits++
			x &= x - 1
		}
	}
	avg := float64(diffBits) / 64
	if avg < 24 || avg > 40 {
		t.Errorf("average flipped bits = %.1f, want ~32", avg)
	}
}
