package xrand

// State returns the generator's internal state for checkpointing.
func (p *PCG) State() (state, inc uint64) { return p.state, p.inc }

// SetState restores state captured by State, making the generator
// continue the exact sequence the captured one would have produced.
func (p *PCG) SetState(state, inc uint64) { p.state, p.inc = state, inc }
