// Package xrand provides the deterministic random-number machinery used
// throughout the simulator and the workload generators: a PCG-XSH-RR
// generator, uniform helpers, a Zipfian generator (for YCSB key
// popularity), and slice shuffles.
//
// Determinism matters here: every experiment in the benchmark harness is
// seeded, so each table and figure regenerates identically from run to
// run. The standard library's math/rand would also work, but a local
// generator keeps the stream layout stable across Go releases and lets
// hot simulator paths inline the generator.
package xrand

import "math"

// PCG is a PCG-XSH-RR 64/32 pseudo-random generator. The zero value is
// not usable; construct with New.
type PCG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *PCG {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a generator with an explicit stream selector, so
// that parallel simulated threads can draw from independent sequences.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{inc: stream<<1 | 1}
	p.state = p.inc + seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32 random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 random bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(p.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (p *PCG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire-style rejection-free-ish bounded generation with a
	// threshold retry to remove modulo bias.
	threshold := -n % n
	for {
		v := p.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Zipf generates Zipfian-distributed values in [0, n), the standard
// popularity skew used by YCSB. It uses the Gray et al. rejection
// inversion method, matching the YCSB reference generator.
type Zipf struct {
	rng   *PCG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf returns a Zipfian generator over [0, n) with skew theta
// (YCSB default 0.99). It panics if n == 0 or theta is not in (0, 1).
func NewZipf(rng *PCG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with zero n")
	}
	if theta <= 0 || theta >= 1 {
		panic("xrand: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipfian value in [0, n). Value 0 is the most
// popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ScrambledNext returns the next Zipfian value hashed across the full
// key space, as YCSB's "scrambled zipfian" does, so that popular keys
// are not clustered at low addresses.
func (z *Zipf) ScrambledNext() uint64 {
	return Hash64(z.Next()) % z.n
}

// Hash64 is the FNV-1a style finalizer used to scramble Zipfian output.
func Hash64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
