package cache

import "fmt"

// policyNames lists every replacement policy by its String() name, in
// declaration order, for parsing and registry listings.
var policyNames = []string{"LRU", "PLRU", "FIFO", "Random", "QLRU", "SRRIP"}

// PolicyNames returns the parseable replacement-policy names in
// declaration order.
func PolicyNames() []string {
	out := make([]string, len(policyNames))
	copy(out, policyNames)
	return out
}

// ParsePolicy is the inverse of Policy.String. The error string is
// deterministic and lists the accepted names.
func ParsePolicy(s string) (Policy, error) {
	for i, name := range policyNames {
		if s == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("unknown replacement policy %q (one of %v)", s, policyNames)
}
