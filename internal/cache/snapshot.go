package cache

import (
	"fmt"

	"prestores/internal/snap"
)

// SnapshotState serializes all mutable cache state: the replacement
// clock, the RNG, the counters, and every set's tags, stamps, flags and
// tree bits. The configuration itself is not written — restore targets
// are constructed from the same config, and the machine-level config
// hash guards against mismatches; the geometry stamp here is a second,
// cheaper line of defence that catches corrupt payloads early.
func (c *Cache) SnapshotState(w *snap.Writer) {
	w.Section("CACH")
	w.U64(uint64(len(c.sets)))
	w.U64(uint64(c.cfg.Ways))
	w.U64(c.tick)
	state, inc := c.rng.State()
	w.U64(state)
	w.U64(inc)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Evictions)
	w.U64(c.stats.DirtyEvictions)
	w.U64(c.stats.Cleans)
	w.U64(c.stats.Fills)
	w.U64(c.stats.Invalidations)
	for si := range c.sets {
		s := &c.sets[si]
		w.I64(int64(s.nvalid))
		w.U64(s.plru)
		w.U8(s.mru)
		for _, t := range s.tags {
			w.U64(t)
		}
		for _, st := range s.stamps {
			w.U64(st)
		}
		w.Raw(s.flags)
	}
}

// RestoreState overwrites the cache's mutable state with a snapshot
// taken from an identically-configured cache. The per-set metadata is
// copied into the existing backing arrays in place.
func (c *Cache) RestoreState(r *snap.Reader) error {
	r.Section("CACH")
	nsets, ways := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nsets != uint64(len(c.sets)) || ways != uint64(c.cfg.Ways) {
		return fmt.Errorf("cache %q: snapshot geometry %dx%d does not match %dx%d",
			c.cfg.Name, nsets, ways, len(c.sets), c.cfg.Ways)
	}
	c.tick = r.U64()
	state, inc := r.U64(), r.U64()
	c.rng.SetState(state, inc)
	c.stats.Hits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.Evictions = r.U64()
	c.stats.DirtyEvictions = r.U64()
	c.stats.Cleans = r.U64()
	c.stats.Fills = r.U64()
	c.stats.Invalidations = r.U64()
	for si := range c.sets {
		s := &c.sets[si]
		s.nvalid = int(r.I64())
		s.plru = r.U64()
		s.mru = r.U8()
		for i := range s.tags {
			s.tags[i] = r.U64()
		}
		for i := range s.stamps {
			s.stamps[i] = r.U64()
		}
		r.Raw(s.flags)
	}
	return r.Err()
}
