// Package cache implements a set-associative cache model with the
// replacement policies found in the CPUs the paper evaluates.
//
// The policy matters: the paper's Problem #1 (random order of
// evictions, §4.1) exists because modern LLCs do not implement strict
// LRU — Intel parts mix pseudo-LRU with "random" evictions, and ARM
// parts mix LRU, FIFO and random. A cache that evicted in strict LRU
// order would write a sequentially-written array back to memory in
// order and PMEM would see no write amplification. This package
// provides strict LRU, tree-PLRU, FIFO, uniform-random, and QLRU (a
// pseudo-LRU with an occasional random victim, approximating Intel's
// documented behaviour); experiments select per-level policies, and the
// ablation benches flip them.
package cache

import (
	"fmt"

	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Policy selects the replacement algorithm.
type Policy int

// Replacement policies.
const (
	LRU    Policy = iota // strict least-recently-used
	PLRU                 // tree pseudo-LRU
	FIFO                 // insertion order
	Random               // uniform random victim
	QLRU                 // pseudo-LRU with occasional random victim (Intel-like)
	SRRIP                // static re-reference interval prediction (2-bit)
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case PLRU:
		return "PLRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	case QLRU:
		return "QLRU"
	case SRRIP:
		return "SRRIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes; must be Ways*LineSize*nsets
	Ways     int
	LineSize uint64
	Policy   Policy
	// RandomMix is the probability (0..1) that QLRU picks a random
	// victim instead of the PLRU one. Ignored by other policies.
	RandomMix float64
	// HashSets enables Intel-style "complex addressing": upper address
	// bits are XOR-folded into the set index, so physically adjacent
	// lines land in unrelated sets. This decorrelates the eviction
	// times of the lines of one device-granularity block — a key
	// ingredient of Problem #1.
	HashSets bool
	HitLat   units.Cycles
	Seed     uint64
}

// Stats aggregates per-level counters.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Cleans         uint64 // lines transitioned dirty->clean by CleanLine
	Fills          uint64
	Invalidations  uint64
}

// HitRate returns hits / (hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Eviction describes a line pushed out of the cache.
type Eviction struct {
	Addr  uint64 // line base address
	Dirty bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64 // LRU timestamp
	seq   uint64 // FIFO insertion sequence
	rrpv  uint8  // SRRIP re-reference prediction value (0 = imminent)
}

type set struct {
	lines []line
	plru  uint64 // tree-PLRU bits
}

// Cache is one level of a set-associative cache. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Cache struct {
	cfg      Config
	sets     []set
	setMask  uint64
	lineBits uint
	tick     uint64
	rng      *xrand.PCG
	stats    Stats
}

// New returns a cache for cfg. It panics on inconsistent geometry so
// that a bad machine description fails loudly at construction.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.LineSize == 0 || cfg.Size == 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %+v", cfg.Name, cfg))
	}
	if !units.IsPow2(cfg.LineSize) {
		panic(fmt.Sprintf("cache %q: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nsets := cfg.Size / (uint64(cfg.Ways) * cfg.LineSize)
	if nsets == 0 || !units.IsPow2(nsets) {
		panic(fmt.Sprintf("cache %q: %d sets (size %d, ways %d, line %d) — must be a power of two",
			cfg.Name, nsets, cfg.Size, cfg.Ways, cfg.LineSize))
	}
	if cfg.Policy == QLRU && cfg.RandomMix == 0 {
		cfg.RandomMix = 0.3
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([]set, nsets),
		setMask:  nsets - 1,
		lineBits: units.Log2(cfg.LineSize),
		rng:      xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.cfg.LineSize }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() units.Cycles { return c.cfg.HitLat }

// LineBase returns the base address of the line containing addr.
func (c *Cache) LineBase(addr uint64) uint64 {
	return units.AlignDown(addr, c.cfg.LineSize)
}

func (c *Cache) locate(addr uint64) (int, uint64) {
	lineAddr := addr >> c.lineBits
	si := lineAddr & c.setMask
	if c.cfg.HashSets {
		si = c.hashSet(lineAddr)
	}
	return int(si), lineAddr
}

// hashSet folds the upper line-address bits into the set index.
func (c *Cache) hashSet(lineAddr uint64) uint64 {
	h := lineAddr
	h ^= h >> units.Log2(uint64(len(c.sets)))
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h & c.setMask
}

func (s *set) find(tag uint64) int {
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].tag == tag {
			return i
		}
	}
	return -1
}

// Contains reports whether the line holding addr is present, without
// touching replacement state.
func (c *Cache) Contains(addr uint64) bool {
	si, tag := c.locate(addr)
	return c.sets[si].find(tag) >= 0
}

// IsDirty reports whether the line holding addr is present and dirty.
func (c *Cache) IsDirty(addr uint64) bool {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	i := s.find(tag)
	return i >= 0 && s.lines[i].dirty
}

// Access looks up the line containing addr, filling it on a miss.
// write marks the line dirty. It returns whether the access hit and,
// if a valid line was displaced by the fill, the eviction.
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction, evicted bool) {
	c.tick++
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		c.stats.Hits++
		s.lines[i].use = c.tick
		s.lines[i].rrpv = 0 // hit promotion
		if write {
			s.lines[i].dirty = true
		}
		c.touchPLRU(s, i)
		return true, Eviction{}, false
	}
	c.stats.Misses++
	ev, evicted = c.fill(si, tag, write)
	return false, ev, evicted
}

// Insert places the line containing addr into the cache without
// counting a hit or miss (used when a lower level absorbs an eviction
// from an upper level). dirty marks the inserted line dirty. If the
// line is already present, dirty is OR-ed in.
func (c *Cache) Insert(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	c.tick++
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		s.lines[i].use = c.tick
		s.lines[i].dirty = s.lines[i].dirty || dirty
		c.touchPLRU(s, i)
		return Eviction{}, false
	}
	return c.fill(si, tag, dirty)
}

func (c *Cache) fill(si int, tag uint64, dirty bool) (ev Eviction, evicted bool) {
	s := &c.sets[si]
	c.stats.Fills++
	victim := -1
	for i := range s.lines {
		if !s.lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.pickVictim(s)
		old := &s.lines[victim]
		ev = Eviction{Addr: c.reconstruct(si, old.tag), Dirty: old.dirty}
		evicted = true
		c.stats.Evictions++
		if old.dirty {
			c.stats.DirtyEvictions++
		}
	}
	s.lines[victim] = line{tag: tag, valid: true, dirty: dirty, use: c.tick, seq: c.tick,
		rrpv: srripInsert}
	c.touchPLRU(s, victim)
	return ev, evicted
}

// SRRIP constants: 2-bit RRPV, insert at "long re-reference".
const (
	srripMax    uint8 = 3
	srripInsert uint8 = 2
)

// srripVictim finds a line predicted distant (rrpv == max), aging the
// set until one exists.
func (c *Cache) srripVictim(s *set) int {
	for {
		for i := range s.lines {
			if s.lines[i].rrpv >= srripMax {
				return i
			}
		}
		for i := range s.lines {
			s.lines[i].rrpv++
		}
	}
}

// reconstruct rebuilds a line base address from its tag. Tags store
// the full line address (necessary once set hashing is enabled), so the
// set index is unused.
func (c *Cache) reconstruct(si int, tag uint64) uint64 {
	_ = si
	return tag << c.lineBits
}

func (c *Cache) pickVictim(s *set) int {
	switch c.cfg.Policy {
	case LRU:
		return oldestBy(s.lines, func(l *line) uint64 { return l.use })
	case FIFO:
		return oldestBy(s.lines, func(l *line) uint64 { return l.seq })
	case Random:
		return c.rng.Intn(len(s.lines))
	case PLRU:
		return c.plruVictim(s)
	case QLRU:
		if c.rng.Float64() < c.cfg.RandomMix {
			return c.rng.Intn(len(s.lines))
		}
		return c.plruVictim(s)
	case SRRIP:
		return c.srripVictim(s)
	default:
		panic("cache: unknown policy")
	}
}

func oldestBy(lines []line, key func(*line) uint64) int {
	best, bestKey := 0, ^uint64(0)
	for i := range lines {
		if k := key(&lines[i]); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// plruVictim walks the PLRU tree away from recently-used leaves. For
// non-power-of-two way counts it falls back to LRU.
func (c *Cache) plruVictim(s *set) int {
	ways := len(s.lines)
	if !units.IsPow2(uint64(ways)) {
		return oldestBy(s.lines, func(l *line) uint64 { return l.use })
	}
	idx, node := 0, 1
	for span := ways; span > 1; span /= 2 {
		// touchPLRU sets the bit when the left half was used recently,
		// so a set bit sends the victim walk right.
		if (s.plru>>uint(node))&1 == 1 {
			idx += span / 2
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return idx
}

// touchPLRU updates the PLRU tree bits to point away from way i.
func (c *Cache) touchPLRU(s *set, i int) {
	ways := len(s.lines)
	if !units.IsPow2(uint64(ways)) || ways < 2 {
		return
	}
	node, lo, span := 1, 0, ways
	for span > 1 {
		half := span / 2
		if i < lo+half {
			s.plru |= 1 << uint(node) // left recent
			node = node * 2
		} else {
			s.plru &^= 1 << uint(node) // right recent
			lo += half
			node = node*2 + 1
		}
		span = half
	}
}

// CleanLine transitions the line containing addr from dirty to clean,
// reporting whether it was present and dirty (i.e. a write-back is
// needed). The line remains cached — this is the CLWB semantics.
func (c *Cache) CleanLine(addr uint64) (wasDirty bool) {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 && s.lines[i].dirty {
		s.lines[i].dirty = false
		c.stats.Cleans++
		return true
	}
	return false
}

// Invalidate removes the line containing addr, returning whether it was
// present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		present, dirty = true, s.lines[i].dirty
		s.lines[i] = line{}
		c.stats.Invalidations++
	}
	return present, dirty
}

// DirtyLines calls fn for every dirty line's base address. Iteration
// order is set-major, which approximates the arbitrary order of a
// hardware cache flush.
func (c *Cache) DirtyLines(fn func(addr uint64)) {
	for si := range c.sets {
		s := &c.sets[si]
		for li := range s.lines {
			if s.lines[li].valid && s.lines[li].dirty {
				fn(c.reconstruct(si, s.lines[li].tag))
			}
		}
	}
}

// ValidLines returns the number of valid lines (for tests).
func (c *Cache) ValidLines() int {
	n := 0
	for si := range c.sets {
		for li := range c.sets[si].lines {
			if c.sets[si].lines[li].valid {
				n++
			}
		}
	}
	return n
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Clear invalidates every line without write-backs (for test setup).
func (c *Cache) Clear() {
	for si := range c.sets {
		for li := range c.sets[si].lines {
			c.sets[si].lines[li] = line{}
		}
		c.sets[si].plru = 0
	}
}
