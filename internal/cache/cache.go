// Package cache implements a set-associative cache model with the
// replacement policies found in the CPUs the paper evaluates.
//
// The policy matters: the paper's Problem #1 (random order of
// evictions, §4.1) exists because modern LLCs do not implement strict
// LRU — Intel parts mix pseudo-LRU with "random" evictions, and ARM
// parts mix LRU, FIFO and random. A cache that evicted in strict LRU
// order would write a sequentially-written array back to memory in
// order and PMEM would see no write amplification. This package
// provides strict LRU, tree-PLRU, FIFO, uniform-random, and QLRU (a
// pseudo-LRU with an occasional random victim, approximating Intel's
// documented behaviour); experiments select per-level policies, and the
// ablation benches flip them.
package cache

import (
	"fmt"

	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Policy selects the replacement algorithm.
type Policy int

// Replacement policies.
const (
	LRU    Policy = iota // strict least-recently-used
	PLRU                 // tree pseudo-LRU
	FIFO                 // insertion order
	Random               // uniform random victim
	QLRU                 // pseudo-LRU with occasional random victim (Intel-like)
	SRRIP                // static re-reference interval prediction (2-bit)
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case PLRU:
		return "PLRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	case QLRU:
		return "QLRU"
	case SRRIP:
		return "SRRIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes; must be Ways*LineSize*nsets
	Ways     int
	LineSize uint64
	Policy   Policy
	// RandomMix is the probability (0..1) that QLRU picks a random
	// victim instead of the PLRU one. Ignored by other policies.
	RandomMix float64
	// HashSets enables Intel-style "complex addressing": upper address
	// bits are XOR-folded into the set index, so physically adjacent
	// lines land in unrelated sets. This decorrelates the eviction
	// times of the lines of one device-granularity block — a key
	// ingredient of Problem #1.
	HashSets bool
	HitLat   units.Cycles
	Seed     uint64
}

// Stats aggregates per-level counters.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Cleans         uint64 // lines transitioned dirty->clean by CleanLine
	Fills          uint64
	Invalidations  uint64
}

// HitRate returns hits / (hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Eviction describes a line pushed out of the cache.
type Eviction struct {
	Addr  uint64 // line base address
	Dirty bool
}

// Per-line metadata is split into parallel arrays (see set): an 8-byte
// recency/insertion stamp and a flags byte packing the dirty bit with
// the 2-bit SRRIP re-reference prediction value.
const (
	dirtyBit  uint8 = 1 << 0
	rrpvShift       = 1
	rrpvMask  uint8 = 3 << rrpvShift
)

// invalidTag marks an empty way in a set's tag array. Real tags are
// line addresses shifted right by the line bits, so all-ones can never
// occur.
const invalidTag = ^uint64(0)

// set keeps per-way metadata in parallel dense arrays: the tag scan is
// the single hottest loop in the simulator, and the large-LLC metadata
// working set is what the simulator itself misses on, so every way
// costs 17 bytes (tag + stamp + flags) instead of a 48-byte struct.
//
// stamps holds one timestamp per way. For FIFO caches it is the
// insertion tick (hits do not refresh it); for every other policy it is
// the last-use tick. Only one of the two meanings is ever read, because
// a cache has exactly one replacement policy.
type set struct {
	tags   []uint64 // line address per way, invalidTag when empty
	stamps []uint64 // recency (or FIFO insertion) tick per way
	flags  []uint8  // dirtyBit | rrpv<<rrpvShift per way
	nvalid int
	plru   uint64 // tree-PLRU bits
	// mru is a way predictor: the way of the set's most recent hit or
	// fill, checked before the tag scan. Tags are unique within a set,
	// so a predictor hit returns the same way the scan would.
	mru uint8
}

// Cache is one level of a set-associative cache. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Cache struct {
	cfg      Config
	sets     []set
	setMask  uint64
	setBits  uint
	lineBits uint
	tick     uint64
	rng      *xrand.PCG
	stats    Stats

	// Precomputed tree-PLRU update masks, indexed by way: touching way
	// i sets plruSet[i] and clears plruClr[i]. The tree walk depends
	// only on (i, ways), so hoisting it out of touchPLRU turns the
	// per-access update into two mask operations. Both masks are zero
	// for non-power-of-two way counts (PLRU falls back to LRU there).
	plruSet []uint64
	plruClr []uint64

	waysPow2 bool
	// stampOnHit is false for FIFO, whose victim choice depends on
	// insertion order: hits must then leave the stamp alone.
	stampOnHit bool
}

// New returns a cache for cfg. It panics on inconsistent geometry so
// that a bad machine description fails loudly at construction.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Ways > 256 || cfg.LineSize == 0 || cfg.Size == 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %+v", cfg.Name, cfg))
	}
	if !units.IsPow2(cfg.LineSize) {
		panic(fmt.Sprintf("cache %q: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nsets := cfg.Size / (uint64(cfg.Ways) * cfg.LineSize)
	if nsets == 0 || !units.IsPow2(nsets) {
		panic(fmt.Sprintf("cache %q: %d sets (size %d, ways %d, line %d) — must be a power of two",
			cfg.Name, nsets, cfg.Size, cfg.Ways, cfg.LineSize))
	}
	if cfg.Policy == QLRU && cfg.RandomMix == 0 {
		cfg.RandomMix = 0.3
	}
	c := &Cache{
		cfg:        cfg,
		sets:       make([]set, nsets),
		setMask:    nsets - 1,
		setBits:    units.Log2(nsets),
		lineBits:   units.Log2(cfg.LineSize),
		rng:        xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		waysPow2:   units.IsPow2(uint64(cfg.Ways)),
		stampOnHit: cfg.Policy != FIFO,
	}
	c.plruSet = make([]uint64, cfg.Ways)
	c.plruClr = make([]uint64, cfg.Ways)
	if c.waysPow2 && cfg.Ways >= 2 {
		for i := 0; i < cfg.Ways; i++ {
			node, lo, span := 1, 0, cfg.Ways
			for span > 1 {
				half := span / 2
				if i < lo+half {
					c.plruSet[i] |= 1 << uint(node) // left recent
					node = node * 2
				} else {
					c.plruClr[i] |= 1 << uint(node) // right recent
					lo += half
					node = node*2 + 1
				}
				span = half
			}
		}
	}
	tags := make([]uint64, len(c.sets)*cfg.Ways)
	for i := range tags {
		tags[i] = invalidTag
	}
	stamps := make([]uint64, len(c.sets)*cfg.Ways)
	flags := make([]uint8, len(c.sets)*cfg.Ways)
	for i := range c.sets {
		lo, hi := i*cfg.Ways, (i+1)*cfg.Ways
		c.sets[i].tags = tags[lo:hi:hi]
		c.sets[i].stamps = stamps[lo:hi:hi]
		c.sets[i].flags = flags[lo:hi:hi]
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.cfg.LineSize }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() units.Cycles { return c.cfg.HitLat }

// LineBase returns the base address of the line containing addr.
func (c *Cache) LineBase(addr uint64) uint64 {
	return units.AlignDown(addr, c.cfg.LineSize)
}

func (c *Cache) locate(addr uint64) (int, uint64) {
	lineAddr := addr >> c.lineBits
	si := lineAddr & c.setMask
	if c.cfg.HashSets {
		si = c.hashSet(lineAddr)
	}
	return int(si), lineAddr
}

// hashSet folds the upper line-address bits into the set index.
func (c *Cache) hashSet(lineAddr uint64) uint64 {
	h := lineAddr
	h ^= h >> c.setBits
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h & c.setMask
}

func (s *set) find(tag uint64) int {
	if i := int(s.mru); s.tags[i] == tag {
		return i
	}
	for i, t := range s.tags {
		if t == tag {
			s.mru = uint8(i)
			return i
		}
	}
	return -1
}

// Contains reports whether the line holding addr is present, without
// touching replacement state.
func (c *Cache) Contains(addr uint64) bool {
	si, tag := c.locate(addr)
	return c.sets[si].find(tag) >= 0
}

// IsDirty reports whether the line holding addr is present and dirty.
func (c *Cache) IsDirty(addr uint64) bool {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	i := s.find(tag)
	return i >= 0 && s.flags[i]&dirtyBit != 0
}

// Access looks up the line containing addr, filling it on a miss.
// write marks the line dirty. It returns whether the access hit and,
// if a valid line was displaced by the fill, the eviction.
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction, evicted bool) {
	c.tick++
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		c.stats.Hits++
		if c.stampOnHit {
			s.stamps[i] = c.tick
		}
		f := s.flags[i] &^ rrpvMask // hit promotion
		if write {
			f |= dirtyBit
		}
		s.flags[i] = f
		c.touchPLRU(s, i)
		return true, Eviction{}, false
	}
	c.stats.Misses++
	ev, evicted = c.fill(si, tag, write)
	return false, ev, evicted
}

// Touch looks up the line containing addr and, if present, performs
// exactly what Access does on a hit: the hit is counted, recency state
// is updated, and write marks the line dirty. An absent line is left
// alone — no fill, no miss counted. It is the fused equivalent of the
// Contains-then-Access sequence the simulator core issues on its load
// and RFO hit paths, saving the second tag lookup.
func (c *Cache) Touch(addr uint64, write bool) bool {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	i := s.find(tag)
	if i < 0 {
		return false
	}
	c.tick++
	c.stats.Hits++
	if c.stampOnHit {
		s.stamps[i] = c.tick
	}
	f := s.flags[i] &^ rrpvMask // hit promotion
	if write {
		f |= dirtyBit
	}
	s.flags[i] = f
	c.touchPLRU(s, i)
	return true
}

// Fill inserts a line the caller has just probed and knows to be
// absent: Insert minus the redundant tag lookup. Calling it for a
// present line would duplicate the line; callers must hold a
// just-checked miss.
func (c *Cache) Fill(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	c.tick++
	si, tag := c.locate(addr)
	return c.fill(si, tag, dirty)
}

// Insert places the line containing addr into the cache without
// counting a hit or miss (used when a lower level absorbs an eviction
// from an upper level). dirty marks the inserted line dirty. If the
// line is already present, dirty is OR-ed in.
func (c *Cache) Insert(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	c.tick++
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		if c.stampOnHit {
			s.stamps[i] = c.tick
		}
		if dirty {
			s.flags[i] |= dirtyBit
		}
		c.touchPLRU(s, i)
		return Eviction{}, false
	}
	return c.fill(si, tag, dirty)
}

func (c *Cache) fill(si int, tag uint64, dirty bool) (ev Eviction, evicted bool) {
	s := &c.sets[si]
	c.stats.Fills++
	victim := -1
	if s.nvalid < len(s.tags) { // a full set has no free way to scan for
		for i, t := range s.tags {
			if t == invalidTag {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = c.pickVictim(s)
		oldDirty := s.flags[victim]&dirtyBit != 0
		ev = Eviction{Addr: c.reconstruct(si, s.tags[victim]), Dirty: oldDirty}
		evicted = true
		c.stats.Evictions++
		if oldDirty {
			c.stats.DirtyEvictions++
		}
	} else {
		s.nvalid++
	}
	s.tags[victim] = tag
	s.stamps[victim] = c.tick
	s.mru = uint8(victim)
	f := uint8(srripInsert << rrpvShift)
	if dirty {
		f |= dirtyBit
	}
	s.flags[victim] = f
	c.touchPLRU(s, victim)
	return ev, evicted
}

// SRRIP constants: 2-bit RRPV, insert at "long re-reference".
const (
	srripMax    uint8 = 3
	srripInsert uint8 = 2
)

// srripVictim finds a line predicted distant (rrpv == max), aging the
// set until one exists.
func (c *Cache) srripVictim(s *set) int {
	for {
		for i, f := range s.flags {
			if f>>rrpvShift >= srripMax {
				return i
			}
		}
		for i := range s.flags {
			s.flags[i] += 1 << rrpvShift
		}
	}
}

// reconstruct rebuilds a line base address from its tag. Tags store
// the full line address (necessary once set hashing is enabled), so the
// set index is unused.
func (c *Cache) reconstruct(si int, tag uint64) uint64 {
	_ = si
	return tag << c.lineBits
}

func (c *Cache) pickVictim(s *set) int {
	switch c.cfg.Policy {
	case LRU, FIFO:
		// Both pick the minimum stamp; the stamp's meaning (last use
		// vs insertion) is fixed per policy by stampOnHit.
		return oldest(s.stamps)
	case Random:
		return c.rng.Intn(len(s.stamps))
	case PLRU:
		return c.plruVictim(s)
	case QLRU:
		if c.rng.Float64() < c.cfg.RandomMix {
			return c.rng.Intn(len(s.stamps))
		}
		return c.plruVictim(s)
	case SRRIP:
		return c.srripVictim(s)
	default:
		panic("cache: unknown policy")
	}
}

func oldest(stamps []uint64) int {
	best, bestKey := 0, ^uint64(0)
	for i, k := range stamps {
		if k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// plruVictim walks the PLRU tree away from recently-used leaves. For
// non-power-of-two way counts it falls back to LRU.
func (c *Cache) plruVictim(s *set) int {
	ways := len(s.tags)
	if !c.waysPow2 {
		return oldest(s.stamps)
	}
	// touchPLRU sets a node's bit when the left half was used recently,
	// so a set bit sends the victim walk right. The walk is branchless:
	// PLRU bits are effectively random, so a conditional here would
	// mispredict half the time at every level.
	idx, node := 0, 1
	for span := ways; span > 1; span >>= 1 {
		b := int((s.plru >> uint(node)) & 1)
		idx += b * (span >> 1)
		node = node*2 + b
	}
	return idx
}

// touchPLRU updates the PLRU tree bits to point away from way i, using
// the masks precomputed in New (no-ops for non-power-of-two way counts).
func (c *Cache) touchPLRU(s *set, i int) {
	s.plru = (s.plru &^ c.plruClr[i]) | c.plruSet[i]
}

// CleanLine transitions the line containing addr from dirty to clean,
// reporting whether it was present and dirty (i.e. a write-back is
// needed). The line remains cached — this is the CLWB semantics.
func (c *Cache) CleanLine(addr uint64) (wasDirty bool) {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 && s.flags[i]&dirtyBit != 0 {
		s.flags[i] &^= dirtyBit
		c.stats.Cleans++
		return true
	}
	return false
}

// Invalidate removes the line containing addr, returning whether it was
// present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si, tag := c.locate(addr)
	s := &c.sets[si]
	if i := s.find(tag); i >= 0 {
		present, dirty = true, s.flags[i]&dirtyBit != 0
		s.tags[i] = invalidTag
		s.stamps[i] = 0
		s.flags[i] = 0
		s.nvalid--
		c.stats.Invalidations++
	}
	return present, dirty
}

// DirtyLines calls fn for every dirty line's base address. Iteration
// order is set-major, which approximates the arbitrary order of a
// hardware cache flush.
func (c *Cache) DirtyLines(fn func(addr uint64)) {
	for si := range c.sets {
		s := &c.sets[si]
		for li, tag := range s.tags {
			if tag != invalidTag && s.flags[li]&dirtyBit != 0 {
				fn(c.reconstruct(si, tag))
			}
		}
	}
}

// ValidLines returns the number of valid lines (for tests).
func (c *Cache) ValidLines() int {
	n := 0
	for si := range c.sets {
		n += c.sets[si].nvalid
	}
	return n
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Clear invalidates every line without write-backs (for test setup).
func (c *Cache) Clear() {
	for si := range c.sets {
		s := &c.sets[si]
		for li := range s.tags {
			s.tags[li] = invalidTag
			s.stamps[li] = 0
			s.flags[li] = 0
		}
		s.nvalid = 0
		s.plru = 0
	}
}
