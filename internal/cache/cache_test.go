package cache

import (
	"testing"
	"testing/quick"

	"prestores/internal/units"
	"prestores/internal/xrand"
)

func smallCache(pol Policy) *Cache {
	return New(Config{
		Name: "t", Size: 4 * units.KiB, Ways: 4, LineSize: 64,
		Policy: pol, HitLat: 4, Seed: 1,
	})
}

func TestGeometryPanics(t *testing.T) {
	cases := []Config{
		{Size: 0, Ways: 4, LineSize: 64},
		{Size: 4096, Ways: 0, LineSize: 64},
		{Size: 4096, Ways: 4, LineSize: 0},
		{Size: 4096, Ways: 4, LineSize: 63}, // not pow2
		{Size: 3000, Ways: 4, LineSize: 64}, // sets not pow2
		{Size: 128, Ways: 4, LineSize: 64},  // zero sets
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := smallCache(LRU)
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access missed")
	}
	hit, _, _ = c.Access(0x1004, false) // same line
	if !hit {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirtyTracking(t *testing.T) {
	c := smallCache(LRU)
	c.Access(0x2000, false)
	if c.IsDirty(0x2000) {
		t.Fatal("read access marked dirty")
	}
	c.Access(0x2000, true)
	if !c.IsDirty(0x2000) {
		t.Fatal("write access not dirty")
	}
	if !c.CleanLine(0x2000) {
		t.Fatal("CleanLine on dirty line returned false")
	}
	if c.IsDirty(0x2000) {
		t.Fatal("line dirty after clean")
	}
	if !c.Contains(0x2000) {
		t.Fatal("clean evicted the line (clwb must keep it cached)")
	}
	if c.CleanLine(0x2000) {
		t.Fatal("CleanLine on clean line returned true")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 4-way set: fill ways, touch the first, insert a 5th line; the
	// second-oldest must be the victim.
	c := smallCache(LRU)
	setStride := uint64(c.Config().Size) / uint64(c.Config().Ways) // lines mapping to set 0
	addrs := []uint64{0, setStride, 2 * setStride, 3 * setStride}
	for _, a := range addrs {
		c.Access(a, true)
	}
	c.Access(addrs[0], false) // refresh line 0
	_, ev, evicted := c.Access(4*setStride, false)
	if !evicted {
		t.Fatal("no eviction on full set")
	}
	if ev.Addr != addrs[1] {
		t.Fatalf("LRU victim = %#x, want %#x", ev.Addr, addrs[1])
	}
	if !ev.Dirty {
		t.Fatal("victim written earlier should be dirty")
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := smallCache(FIFO)
	setStride := uint64(c.Config().Size) / uint64(c.Config().Ways)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	c.Access(0, false) // a hit must NOT save line 0 under FIFO
	_, ev, evicted := c.Access(4*setStride, false)
	if !evicted || ev.Addr != 0 {
		t.Fatalf("FIFO victim = %#x (evicted=%v), want 0", ev.Addr, evicted)
	}
}

func TestPLRUVictimIsNotMRU(t *testing.T) {
	c := smallCache(PLRU)
	setStride := uint64(c.Config().Size) / uint64(c.Config().Ways)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	mru := 3 * setStride
	c.Access(mru, false)
	_, ev, evicted := c.Access(4*setStride, false)
	if !evicted {
		t.Fatal("no eviction")
	}
	if ev.Addr == mru {
		t.Fatal("PLRU evicted the most recently used line")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(LRU)
	c.Access(0x3000, true)
	present, dirty := c.Invalidate(0x3000)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v", present, dirty)
	}
	if c.Contains(0x3000) {
		t.Fatal("line present after invalidate")
	}
	present, _ = c.Invalidate(0x3000)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestInsertMergesDirty(t *testing.T) {
	c := smallCache(LRU)
	c.Insert(0x4000, false)
	c.Insert(0x4000, true)
	if !c.IsDirty(0x4000) {
		t.Fatal("Insert did not OR dirty")
	}
	c.Insert(0x4000, false)
	if !c.IsDirty(0x4000) {
		t.Fatal("Insert cleared dirty")
	}
}

func TestDirtyLinesIteration(t *testing.T) {
	c := smallCache(LRU)
	c.Access(0x1000, true)
	c.Access(0x2000, false)
	c.Access(0x3040, true)
	seen := map[uint64]bool{}
	c.DirtyLines(func(a uint64) { seen[a] = true })
	if len(seen) != 2 || !seen[0x1000] || !seen[0x3000+64] {
		t.Fatalf("DirtyLines = %v", seen)
	}
}

func TestCapacityInvariant(t *testing.T) {
	for _, pol := range []Policy{LRU, PLRU, FIFO, Random, QLRU} {
		c := smallCache(pol)
		capacity := int(c.Config().Size / c.Config().LineSize)
		rng := xrand.New(42)
		for i := 0; i < 10000; i++ {
			c.Access(rng.Uint64n(1<<24)&^63, rng.Uint32()%2 == 0)
			if v := c.ValidLines(); v > capacity {
				t.Fatalf("%v: %d valid lines > capacity %d", pol, v, capacity)
			}
		}
	}
}

func TestEvictionAddressReconstruction(t *testing.T) {
	for _, hash := range []bool{false, true} {
		c := New(Config{
			Name: "t", Size: 8 * units.KiB, Ways: 2, LineSize: 64,
			Policy: LRU, HashSets: hash, Seed: 3,
		})
		rng := xrand.New(9)
		inserted := map[uint64]bool{}
		evictedAddrs := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			addr := rng.Uint64n(1<<30) &^ 63
			inserted[addr] = true
			if _, ev, evd := c.Access(addr, false); evd {
				evictedAddrs[ev.Addr] = true
			}
		}
		for a := range evictedAddrs {
			if !inserted[a] {
				t.Fatalf("hash=%v: evicted address %#x was never inserted", hash, a)
			}
		}
	}
}

func TestHashSetsSpreadsConflicts(t *testing.T) {
	// Sequential lines with a large power-of-two stride conflict badly
	// without hashing and should spread with it.
	mk := func(hash bool) *Cache {
		return New(Config{
			Name: "t", Size: 64 * units.KiB, Ways: 4, LineSize: 64,
			Policy: LRU, HashSets: hash, Seed: 3,
		})
	}
	run := func(c *Cache) uint64 {
		stride := uint64(c.Config().Size) / uint64(c.Config().Ways) // same-set stride unhashed
		for r := 0; r < 4; r++ {
			for i := uint64(0); i < 64; i++ {
				c.Access(i*stride, false)
			}
		}
		return c.Stats().Misses
	}
	plain, hashed := run(mk(false)), run(mk(true))
	if hashed >= plain {
		t.Fatalf("hashing did not reduce conflict misses: %d vs %d", hashed, plain)
	}
}

func TestClear(t *testing.T) {
	c := smallCache(LRU)
	c.Access(0x1000, true)
	c.Clear()
	if c.ValidLines() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

func TestQuickContainsAfterAccess(t *testing.T) {
	c := smallCache(QLRU)
	f := func(addr uint64) bool {
		addr &= 1<<28 - 1
		c.Access(addr, false)
		return c.Contains(addr) // just-accessed line must be present
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	for pol, want := range map[Policy]string{
		LRU: "LRU", PLRU: "PLRU", FIFO: "FIFO", Random: "Random", QLRU: "QLRU",
	} {
		if pol.String() != want {
			t.Errorf("%d.String() = %q", pol, pol.String())
		}
	}
}

func TestHitRate(t *testing.T) {
	c := smallCache(LRU)
	if c.Stats().HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestQLRUSometimesRandom(t *testing.T) {
	// With RandomMix=1.0 the victim should frequently differ from the
	// PLRU victim; with 0 it should follow PLRU deterministically. We
	// simply check both configurations run and evictions occur.
	for _, mix := range []float64{0.0, 1.0} {
		c := New(Config{
			Name: "t", Size: 4 * units.KiB, Ways: 4, LineSize: 64,
			Policy: QLRU, RandomMix: mix, Seed: 7,
		})
		evictions := 0
		for i := uint64(0); i < 1000; i++ {
			if _, _, evd := c.Access(i*1024, false); evd {
				evictions++
			}
		}
		if evictions == 0 {
			t.Fatalf("mix=%v: no evictions", mix)
		}
	}
}

func TestSRRIPBasic(t *testing.T) {
	c := smallCache(SRRIP)
	setStride := uint64(c.Config().Size) / uint64(c.Config().Ways)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	// Promote line 0 with a hit; it must survive the next eviction.
	c.Access(0, false)
	_, ev, evicted := c.Access(4*setStride, false)
	if !evicted {
		t.Fatal("no eviction")
	}
	if ev.Addr == 0 {
		t.Fatal("SRRIP evicted the hit-promoted line")
	}
	if !c.Contains(0) {
		t.Fatal("promoted line gone")
	}
}

func TestSRRIPCapacity(t *testing.T) {
	c := smallCache(SRRIP)
	capacity := int(c.Config().Size / c.Config().LineSize)
	rng := xrand.New(21)
	for i := 0; i < 5000; i++ {
		c.Access(rng.Uint64n(1<<24)&^63, i%2 == 0)
		if v := c.ValidLines(); v > capacity {
			t.Fatalf("over capacity: %d", v)
		}
	}
}

func TestTouchMatchesContainsPlusAccess(t *testing.T) {
	c := smallCache(LRU)
	if c.Touch(0x1000, false) {
		t.Fatal("Touch hit on a cold cache")
	}
	if c.Stats().Misses != 0 {
		t.Fatal("Touch miss counted a miss")
	}
	if c.Contains(0x1000) {
		t.Fatal("Touch miss inserted the line")
	}
	c.Access(0x1000, false)
	if !c.Touch(0x1000, true) {
		t.Fatal("Touch missed a present line")
	}
	if !c.IsDirty(0x1000) {
		t.Fatal("Touch(write) did not mark line dirty")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("Hits = %d; want 1 (from Touch)", st.Hits)
	}
}

func TestTouchUpdatesRecency(t *testing.T) {
	c := smallCache(LRU)
	// Fill one set: lines 0..3 map to the same set (setBits apart).
	stride := uint64(len(c.sets)) * 64
	for i := uint64(0); i < 4; i++ {
		c.Access(i*stride, false)
	}
	c.Touch(0, false) // refresh line 0: line 1 becomes LRU
	_, ev, evicted := c.Access(4*stride, false)
	if !evicted || ev.Addr != stride {
		t.Fatalf("evicted %v addr %#x; want line %#x", evicted, ev.Addr, stride)
	}
}

func TestFillInsertsAbsentLine(t *testing.T) {
	c := smallCache(LRU)
	ev, evicted := c.Fill(0x2000, true)
	if evicted {
		t.Fatalf("Fill into empty cache evicted %+v", ev)
	}
	if !c.Contains(0x2000) || !c.IsDirty(0x2000) {
		t.Fatal("Fill did not install a dirty line")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Fill touched hit/miss stats: %+v", st)
	}
}
