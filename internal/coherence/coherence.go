// Package coherence models the cache-coherence directory of the
// simulated machines.
//
// The directory's *location* is the point the paper leans on (§4.2): on
// the evaluated systems the directory is held on the cached device
// itself — Intel parts keep it in DRAM/PMEM, and on Enzian the ARM core
// maintains the status of cached FPGA memory in the FPGA. Every
// cache-line state change therefore costs a device round trip, which is
// why fences that must publish private writes stall for roughly the
// device latency, and why demote pre-stores (which start the state
// change early, in the background) recover that time.
//
// The simulator is functionally single-threaded, so the directory only
// affects timing and statistics, not data correctness.
package coherence

import (
	"prestores/internal/memdev"
	"prestores/internal/units"
)

// lineState tracks which cores hold a line in their private caches.
type lineState struct {
	sharers   uint64 // bitmask of cores holding the line
	exclusive int8   // core id holding it exclusively/dirty, or -1
}

// Directory tracks private-cache line ownership for all lines backed by
// one set of devices. OnDie selects an ablation where directory state
// changes are free (the paper's mechanism removed).
type Directory struct {
	dev   func(addr uint64) memdev.Device
	lines map[uint64]*lineState
	// OnDie, when true, makes directory updates cost nothing; used by
	// the ablation bench to confirm that the on-device directory is
	// what makes fences expensive.
	OnDie bool

	// C2CLat is the core-to-core transfer latency charged when a load
	// must pull a dirty line out of another core's private cache.
	C2CLat units.Cycles

	// OnInvalidate, when set, is called for every remote private-cache
	// copy an exclusive acquisition invalidates, so the machine can
	// actually remove the line from those caches (a stale copy must
	// not serve later hits).
	OnInvalidate func(core int, line uint64)

	stats Stats
}

// Stats counts directory activity.
type Stats struct {
	Reads         uint64 // read (shared) acquisitions processed
	Writes        uint64 // exclusive (RFO) acquisitions processed
	StateChanges  uint64 // transitions that required a device round trip
	Invalidations uint64 // sharer copies invalidated by RFOs
	DirtyForwards uint64 // dirty lines forwarded core-to-core
}

// New returns a directory; dev maps a line address to the device whose
// on-device directory serves it.
func New(dev func(addr uint64) memdev.Device) *Directory {
	return &Directory{
		dev:    dev,
		lines:  make(map[uint64]*lineState),
		C2CLat: 60,
	}
}

func (d *Directory) state(line uint64) *lineState {
	s := d.lines[line]
	if s == nil {
		s = &lineState{exclusive: -1}
		d.lines[line] = s
	}
	return s
}

// dirAccess charges one directory round trip.
func (d *Directory) dirAccess(now units.Cycles, line uint64) units.Cycles {
	d.stats.StateChanges++
	if d.OnDie {
		return now
	}
	return d.dev(line).DirectoryAccess(now)
}

// Read records core acquiring the line in shared state and returns the
// completion cycle plus whether a dirty copy had to be forwarded from
// another core (the caller then skips the memory fill).
func (d *Directory) Read(now units.Cycles, core int, line uint64) (done units.Cycles, dirtyForward bool) {
	d.stats.Reads++
	s := d.state(line)
	done = now
	if s.exclusive >= 0 && s.exclusive != int8(core) {
		// Dirty elsewhere: downgrade the owner, forward the line.
		done = d.dirAccess(done, line) + d.C2CLat
		d.stats.DirtyForwards++
		s.exclusive = -1
		dirtyForward = true
	}
	s.sharers |= 1 << uint(core)
	return done, dirtyForward
}

// Write records core acquiring the line exclusively (an RFO) and
// returns the completion cycle plus the number of remote copies
// invalidated. If the core already holds the line exclusively the
// operation is free — that is the cache-hit fast path.
func (d *Directory) Write(now units.Cycles, core int, line uint64) (done units.Cycles, invalidated int) {
	d.stats.Writes++
	s := d.state(line)
	if s.exclusive == int8(core) {
		return now, 0
	}
	done = d.dirAccess(now, line)
	others := s.sharers &^ (1 << uint(core))
	for c := 0; others != 0; c++ {
		if others&1 != 0 {
			invalidated++
			if d.OnInvalidate != nil {
				d.OnInvalidate(c, line)
			}
		}
		others >>= 1
	}
	d.stats.Invalidations += uint64(invalidated)
	if s.exclusive >= 0 && s.exclusive != int8(core) {
		done += d.C2CLat // pull the dirty copy over
		d.stats.DirtyForwards++
	}
	s.sharers = 1 << uint(core)
	s.exclusive = int8(core)
	return done, invalidated
}

// IsExclusive reports whether core already owns the line exclusively
// (so a store to it needs no directory traffic).
func (d *Directory) IsExclusive(core int, line uint64) bool {
	s := d.lines[line]
	return s != nil && s.exclusive == int8(core)
}

// Evicted records that core no longer holds the line in its private
// caches. Silent evictions do not cost a directory round trip.
func (d *Directory) Evicted(core int, line uint64) {
	s := d.lines[line]
	if s == nil {
		return
	}
	s.sharers &^= 1 << uint(core)
	if s.exclusive == int8(core) {
		s.exclusive = -1
	}
	if s.sharers == 0 {
		delete(d.lines, line)
	}
}

// Downgrade clears exclusivity after the line's dirty data has been
// made globally visible (demote/clean push it to the shared level) but
// keeps the core as a sharer.
func (d *Directory) Downgrade(core int, line uint64) {
	s := d.lines[line]
	if s != nil && s.exclusive == int8(core) {
		s.exclusive = -1
	}
}

// TrackedLines returns the number of lines with directory state (tests).
func (d *Directory) TrackedLines() int { return len(d.lines) }

// Stats returns accumulated counters.
func (d *Directory) Stats() Stats { return d.stats }

// ResetStats clears counters.
func (d *Directory) ResetStats() { d.stats = Stats{} }
