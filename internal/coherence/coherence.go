// Package coherence models the cache-coherence directory of the
// simulated machines.
//
// The directory's *location* is the point the paper leans on (§4.2): on
// the evaluated systems the directory is held on the cached device
// itself — Intel parts keep it in DRAM/PMEM, and on Enzian the ARM core
// maintains the status of cached FPGA memory in the FPGA. Every
// cache-line state change therefore costs a device round trip, which is
// why fences that must publish private writes stall for roughly the
// device latency, and why demote pre-stores (which start the state
// change early, in the background) recover that time.
//
// The simulator is functionally single-threaded, so the directory only
// affects timing and statistics, not data correctness.
package coherence

import (
	"prestores/internal/flatmap"
	"prestores/internal/memdev"
	"prestores/internal/units"
)

// lineState tracks which cores hold a line in their private caches.
type lineState struct {
	sharers   uint64 // bitmask of cores holding the line
	exclusive int8   // core id holding it exclusively/dirty, or -1
}

// Directory tracks private-cache line ownership for all lines backed by
// one set of devices. OnDie selects an ablation where directory state
// changes are free (the paper's mechanism removed).
//
// Line states are stored by value in an open-addressed flat map: the
// directory sits on the simulator's per-miss hot path, where a
// pointer-valued map would allocate a fresh lineState for every line
// whose entry was dropped by a silent eviction (the common case for
// streaming workloads), and the built-in map's hashing dominated the
// profile.
type Directory struct {
	dev   func(addr uint64) memdev.Device
	lines flatmap.Map[lineState]
	// OnDie, when true, makes directory updates cost nothing; used by
	// the ablation bench to confirm that the on-device directory is
	// what makes fences expensive.
	OnDie bool

	// C2CLat is the core-to-core transfer latency charged when a load
	// must pull a dirty line out of another core's private cache.
	C2CLat units.Cycles

	// OnInvalidate, when set, is called for every remote private-cache
	// copy an exclusive acquisition invalidates, so the machine can
	// actually remove the line from those caches (a stale copy must
	// not serve later hits).
	OnInvalidate func(core int, line uint64)

	stats Stats
}

// Stats counts directory activity.
type Stats struct {
	Reads         uint64 // read (shared) acquisitions processed
	Writes        uint64 // exclusive (RFO) acquisitions processed
	StateChanges  uint64 // transitions that required a device round trip
	Invalidations uint64 // sharer copies invalidated by RFOs
	DirtyForwards uint64 // dirty lines forwarded core-to-core
}

// New returns a directory; dev maps a line address to the device whose
// on-device directory serves it.
func New(dev func(addr uint64) memdev.Device) *Directory {
	return &Directory{
		dev:    dev,
		C2CLat: 60,
	}
}

// dirAccess charges one directory round trip.
func (d *Directory) dirAccess(now units.Cycles, line uint64) units.Cycles {
	d.stats.StateChanges++
	if d.OnDie {
		return now
	}
	return d.dev(line).DirectoryAccess(now)
}

// Read records core acquiring the line in shared state and returns the
// completion cycle plus whether a dirty copy had to be forwarded from
// another core (the caller then skips the memory fill).
func (d *Directory) Read(now units.Cycles, core int, line uint64) (done units.Cycles, dirtyForward bool) {
	d.stats.Reads++
	s, ok := d.lines.Get(line)
	if !ok {
		s.exclusive = -1
	}
	done = now
	if s.exclusive >= 0 && s.exclusive != int8(core) {
		// Dirty elsewhere: downgrade the owner, forward the line.
		done = d.dirAccess(done, line) + d.C2CLat
		d.stats.DirtyForwards++
		s.exclusive = -1
		dirtyForward = true
	}
	s.sharers |= 1 << uint(core)
	d.lines.Put(line, s)
	return done, dirtyForward
}

// Write records core acquiring the line exclusively (an RFO) and
// returns the completion cycle plus the number of remote copies
// invalidated. If the core already holds the line exclusively the
// operation is free — that is the cache-hit fast path.
func (d *Directory) Write(now units.Cycles, core int, line uint64) (done units.Cycles, invalidated int) {
	d.stats.Writes++
	s, ok := d.lines.Get(line)
	if !ok {
		s.exclusive = -1
	}
	if s.exclusive == int8(core) {
		return now, 0
	}
	done = d.dirAccess(now, line)
	others := s.sharers &^ (1 << uint(core))
	for c := 0; others != 0; c++ {
		if others&1 != 0 {
			invalidated++
			if d.OnInvalidate != nil {
				d.OnInvalidate(c, line)
			}
		}
		others >>= 1
	}
	d.stats.Invalidations += uint64(invalidated)
	if s.exclusive >= 0 && s.exclusive != int8(core) {
		done += d.C2CLat // pull the dirty copy over
		d.stats.DirtyForwards++
	}
	s.sharers = 1 << uint(core)
	s.exclusive = int8(core)
	d.lines.Put(line, s)
	return done, invalidated
}

// IsExclusive reports whether core already owns the line exclusively
// (so a store to it needs no directory traffic).
func (d *Directory) IsExclusive(core int, line uint64) bool {
	s, ok := d.lines.Get(line)
	return ok && s.exclusive == int8(core)
}

// Holds reports whether core owns the line exclusively and whether its
// sharer bit is set, in one lookup. A clear sharer bit proves the line
// absent from the core's private caches (every private fill is preceded
// by a Read/Write that sets the bit, and the bit is only cleared when
// the copies are gone), so callers may skip tag probes. A set bit may
// be stale — e.g. after Downgrade — and only licenses a probe.
func (d *Directory) Holds(core int, line uint64) (exclusive, sharer bool) {
	s, ok := d.lines.Get(line)
	if !ok {
		return false, false
	}
	return s.exclusive == int8(core), s.sharers&(1<<uint(core)) != 0
}

// Evicted records that core no longer holds the line in its private
// caches. Silent evictions do not cost a directory round trip.
func (d *Directory) Evicted(core int, line uint64) {
	s, ok := d.lines.Get(line)
	if !ok {
		return
	}
	s.sharers &^= 1 << uint(core)
	if s.exclusive == int8(core) {
		s.exclusive = -1
	}
	if s.sharers == 0 {
		d.lines.Delete(line)
		return
	}
	d.lines.Put(line, s)
}

// Downgrade clears exclusivity after the line's dirty data has been
// made globally visible (demote/clean push it to the shared level) but
// keeps the core as a sharer.
func (d *Directory) Downgrade(core int, line uint64) {
	if s, ok := d.lines.Get(line); ok && s.exclusive == int8(core) {
		s.exclusive = -1
		d.lines.Put(line, s)
	}
}

// TrackedLines returns the number of lines with directory state (tests).
func (d *Directory) TrackedLines() int { return d.lines.Len() }

// Stats returns accumulated counters.
func (d *Directory) Stats() Stats { return d.stats }

// ResetStats clears counters.
func (d *Directory) ResetStats() { d.stats = Stats{} }
