package coherence

import (
	"sort"

	"prestores/internal/snap"
)

// SnapshotState serializes the directory's line-state table and
// counters. Entries are written sorted by line address so the encoding
// is independent of the flat map's internal slot layout — two
// directories holding identical state always serialize identically.
// The dev mapping, latencies and ablation switches are configuration
// and are not written.
func (d *Directory) SnapshotState(w *snap.Writer) {
	w.Section("CDIR")
	keys := make([]uint64, 0, d.lines.Len())
	d.lines.Range(func(k uint64, _ lineState) bool {
		keys = append(keys, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		s, _ := d.lines.Get(k)
		w.U64(k)
		w.U64(s.sharers)
		w.U8(uint8(s.exclusive))
	}
	w.U64(d.stats.Reads)
	w.U64(d.stats.Writes)
	w.U64(d.stats.StateChanges)
	w.U64(d.stats.Invalidations)
	w.U64(d.stats.DirtyForwards)
}

// RestoreState replaces the directory's line-state table and counters
// with the snapshot's. Insertion order into the flat map differs from
// the snapshotted directory's history, but the map is order-insensitive
// for all queries, so behaviour is unaffected.
func (d *Directory) RestoreState(r *snap.Reader) error {
	r.Section("CDIR")
	d.lines.Clear()
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := r.U64()
		s := lineState{sharers: r.U64(), exclusive: int8(r.U8())}
		d.lines.Put(k, s)
	}
	d.stats.Reads = r.U64()
	d.stats.Writes = r.U64()
	d.stats.StateChanges = r.U64()
	d.stats.Invalidations = r.U64()
	d.stats.DirtyForwards = r.U64()
	return r.Err()
}
