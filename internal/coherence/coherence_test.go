package coherence

import (
	"testing"

	"prestores/internal/memdev"
	"prestores/internal/units"
)

func testDir(onDie bool) (*Directory, *memdev.Remote) {
	dev := memdev.NewRemote(memdev.Config{ReadLat: 100, Clock: 2000 * units.MHz, BandwidthBS: 10e9})
	d := New(func(uint64) memdev.Device { return dev })
	d.OnDie = onDie
	return d, dev
}

func TestWriteAcquiresExclusive(t *testing.T) {
	d, _ := testDir(false)
	done, inv := d.Write(0, 1, 0x1000)
	if inv != 0 {
		t.Fatalf("first write invalidated %d", inv)
	}
	if done != 100 {
		t.Fatalf("first RFO cost %d, want the directory round trip (100)", done)
	}
	if !d.IsExclusive(1, 0x1000) {
		t.Fatal("writer not exclusive")
	}
	// Second write by the same core is free.
	done, _ = d.Write(500, 1, 0x1000)
	if done != 500 {
		t.Fatalf("exclusive re-write cost %d cycles", done-500)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d, _ := testDir(false)
	d.Read(0, 1, 0x1000)
	d.Read(0, 2, 0x1000)
	var invalidated []int
	d.OnInvalidate = func(core int, line uint64) {
		if line != 0x1000 {
			t.Fatalf("invalidate wrong line %#x", line)
		}
		invalidated = append(invalidated, core)
	}
	_, n := d.Write(0, 3, 0x1000)
	if n != 2 || len(invalidated) != 2 {
		t.Fatalf("invalidated %d (%v), want cores 1 and 2", n, invalidated)
	}
	if !d.IsExclusive(3, 0x1000) {
		t.Fatal("new writer not exclusive")
	}
	if d.IsExclusive(1, 0x1000) {
		t.Fatal("old sharer still exclusive")
	}
}

func TestReadForwardsDirty(t *testing.T) {
	d, _ := testDir(false)
	d.Write(0, 1, 0x2000)
	done, fwd := d.Read(1000, 2, 0x2000)
	if !fwd {
		t.Fatal("dirty remote line not forwarded")
	}
	if done <= 1000 {
		t.Fatal("forward was free")
	}
	if st := d.Stats(); st.DirtyForwards != 1 {
		t.Fatalf("DirtyForwards = %d", st.DirtyForwards)
	}
	// After the downgrade a second read is clean and free.
	done, fwd = d.Read(2000, 3, 0x2000)
	if fwd || done != 2000 {
		t.Fatalf("clean read: fwd=%v done=%d", fwd, done)
	}
}

func TestOnDieIsFree(t *testing.T) {
	d, _ := testDir(true)
	done, _ := d.Write(0, 1, 0x1000)
	if done != 0 {
		t.Fatalf("on-die directory charged %d cycles", done)
	}
}

func TestDowngrade(t *testing.T) {
	d, _ := testDir(false)
	d.Write(0, 1, 0x3000)
	d.Downgrade(1, 0x3000)
	if d.IsExclusive(1, 0x3000) {
		t.Fatal("still exclusive after downgrade")
	}
	// A read after downgrade must not pay a dirty forward.
	if _, fwd := d.Read(0, 2, 0x3000); fwd {
		t.Fatal("downgraded line forwarded as dirty")
	}
}

func TestEvicted(t *testing.T) {
	d, _ := testDir(false)
	d.Write(0, 1, 0x4000)
	d.Evicted(1, 0x4000)
	if d.TrackedLines() != 0 {
		t.Fatalf("tracked lines = %d after sole owner evicted", d.TrackedLines())
	}
	// Evicting an untracked line is a no-op.
	d.Evicted(2, 0x9999)
}

func TestEvictedKeepsOtherSharers(t *testing.T) {
	d, _ := testDir(false)
	d.Read(0, 1, 0x5000)
	d.Read(0, 2, 0x5000)
	d.Evicted(1, 0x5000)
	if d.TrackedLines() != 1 {
		t.Fatal("line dropped while another sharer holds it")
	}
}

func TestDirectoryCostScalesWithDevice(t *testing.T) {
	fastDev := memdev.NewRemote(memdev.Config{ReadLat: 60, Clock: 2000 * units.MHz, BandwidthBS: 10e9})
	slowDev := memdev.NewRemote(memdev.Config{ReadLat: 200, Clock: 2000 * units.MHz, BandwidthBS: 10e9})
	fast := New(func(uint64) memdev.Device { return fastDev })
	slow := New(func(uint64) memdev.Device { return slowDev })
	df, _ := fast.Write(0, 1, 0)
	ds, _ := slow.Write(0, 1, 0)
	if ds <= df {
		t.Fatalf("slow-device directory (%d) not slower than fast (%d)", ds, df)
	}
}

func TestStatsCount(t *testing.T) {
	d, _ := testDir(false)
	d.Read(0, 1, 0)
	d.Write(0, 2, 0)
	d.Write(0, 2, 0) // exclusive fast path: no state change
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("stats %+v", st)
	}
	d.ResetStats()
	if d.Stats().Writes != 0 {
		t.Fatal("ResetStats kept counters")
	}
}
