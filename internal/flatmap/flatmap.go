// Package flatmap provides an open-addressed hash map keyed by uint64,
// tuned for the simulator's hot per-line state tables (coherence
// directory, write-back queue, store-buffer index).
//
// Compared to the built-in map it trades generality for speed: linear
// probing over a flat key array keeps the probe loop branch-light and
// cache-friendly, and there is no per-entry allocation or tombstone
// accumulation (deletions use backward-shift compaction).
//
// The key ^uint64(0) is reserved as the empty-slot sentinel. All
// intended users key on cache-line base addresses, which are at least
// 8-byte aligned, so the sentinel can never collide with a real key;
// Put panics on it to keep misuse loud.
package flatmap

// empty marks an unoccupied slot.
const empty = ^uint64(0)

// minCap is the initial table size (power of two).
const minCap = 16

// Map is an open-addressed uint64-keyed hash map. The zero value is
// ready to use. It is not safe for concurrent use.
type Map[V any] struct {
	keys  []uint64
	vals  []V
	n     int
	mask  uint64
	shift uint
}

// alloc (re)allocates the table with the given power-of-two capacity.
func (m *Map[V]) alloc(capacity int) {
	m.keys = make([]uint64, capacity)
	for i := range m.keys {
		m.keys[i] = empty
	}
	m.vals = make([]V, capacity)
	m.mask = uint64(capacity - 1)
	m.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		m.shift--
	}
	m.n = 0
}

// home returns the preferred slot for key k (Fibonacci hashing: the
// multiplier is 2^64/phi, whose high bits mix all key bits).
func (m *Map[V]) home(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> m.shift
}

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value stored for k, or the zero value.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if m.n == 0 {
		var zero V
		return zero, false
	}
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return m.vals[i], true
		}
		if kk == empty {
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Put stores v for k, replacing any existing value.
func (m *Map[V]) Put(k uint64, v V) {
	if k == empty {
		panic("flatmap: reserved key")
	}
	if m.keys == nil {
		m.alloc(minCap)
	}
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			m.vals[i] = v
			return
		}
		if kk == empty {
			break
		}
		i = (i + 1) & m.mask
	}
	// Keep load below 3/4 so probe chains stay short.
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
		i = m.home(k)
		for m.keys[i] != empty {
			i = (i + 1) & m.mask
		}
	}
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

func (m *Map[V]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.alloc(2 * len(oldKeys))
	for i, k := range oldKeys {
		if k == empty {
			continue
		}
		j := m.home(k)
		for m.keys[j] != empty {
			j = (j + 1) & m.mask
		}
		m.keys[j] = k
		m.vals[j] = oldVals[i]
		m.n++
	}
}

// Delete removes k if present, using backward-shift compaction so later
// probes stay short and no tombstones accumulate.
func (m *Map[V]) Delete(k uint64) {
	if m.n == 0 {
		return
	}
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == empty {
			return
		}
		if kk == k {
			break
		}
		i = (i + 1) & m.mask
	}
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		kk := m.keys[j]
		if kk == empty {
			break
		}
		// Slot j may move into the hole at i only if its home position
		// does not lie strictly inside (i, j] on the probe circle —
		// otherwise the move would break j's own probe chain.
		if (j-m.home(kk))&m.mask >= (j-i)&m.mask {
			m.keys[i] = kk
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	var zero V
	m.keys[i] = empty
	m.vals[i] = zero
}

// Clear removes all entries but keeps the table capacity.
func (m *Map[V]) Clear() {
	if m.n == 0 {
		return
	}
	for i := range m.keys {
		m.keys[i] = empty
	}
	clear(m.vals)
	m.n = 0
}

// Range calls fn for every entry until fn returns false. The map must
// not be mutated during iteration.
func (m *Map[V]) Range(fn func(k uint64, v V) bool) {
	for i, k := range m.keys {
		if k == empty {
			continue
		}
		if !fn(k, m.vals[i]) {
			return
		}
	}
}
