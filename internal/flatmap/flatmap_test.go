package flatmap

import (
	"testing"

	"prestores/internal/xrand"
)

func TestBasic(t *testing.T) {
	var m Map[int]
	if _, ok := m.Get(64); ok {
		t.Fatal("empty map claims to hold a key")
	}
	m.Put(64, 1)
	m.Put(128, 2)
	m.Put(64, 3) // replace
	if v, ok := m.Get(64); !ok || v != 3 {
		t.Fatalf("Get(64) = %d,%v; want 3,true", v, ok)
	}
	if v, ok := m.Get(128); !ok || v != 2 {
		t.Fatalf("Get(128) = %d,%v; want 2,true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d; want 2", m.Len())
	}
	m.Delete(64)
	if _, ok := m.Get(64); ok {
		t.Fatal("deleted key still present")
	}
	m.Delete(64) // delete absent: no-op
	if m.Len() != 1 {
		t.Fatalf("Len = %d; want 1", m.Len())
	}
}

func TestZeroKey(t *testing.T) {
	var m Map[string]
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v; want zero,true", v, ok)
	}
	m.Delete(0)
	if _, ok := m.Get(0); ok {
		t.Fatal("Delete(0) did not remove the entry")
	}
}

func TestReservedKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(^uint64(0)) did not panic")
		}
	}()
	var m Map[int]
	m.Put(^uint64(0), 1)
}

// TestAgainstBuiltin drives the map with a random op mix and checks
// every observation against a built-in map oracle. Keys are drawn from
// a small space to force collisions, growth, and backshift chains.
func TestAgainstBuiltin(t *testing.T) {
	var m Map[uint64]
	ref := make(map[uint64]uint64)
	rng := xrand.New(7)
	for i := 0; i < 200000; i++ {
		k := rng.Uint64() % 512 * 64 // line-address-like keys
		switch rng.Uint64() % 4 {
		case 0, 1:
			v := rng.Uint64()
			m.Put(k, v)
			ref[k] = v
		case 2:
			m.Delete(k)
			delete(ref, k)
		case 3:
			got, ok := m.Get(k)
			want, okRef := ref[k]
			if ok != okRef || got != want {
				t.Fatalf("op %d: Get(%d) = %d,%v; want %d,%v", i, k, got, ok, want, okRef)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d; want %d", i, m.Len(), len(ref))
		}
	}
	// Final full comparison via Range.
	seen := 0
	m.Range(func(k, v uint64) bool {
		seen++
		if want, ok := ref[k]; !ok || want != v {
			t.Fatalf("Range: entry %d=%d not in oracle (want %d,%v)", k, v, want, ok)
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries; want %d", seen, len(ref))
	}
}

func TestClear(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 100; i++ {
		m.Put(i*64, int(i))
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if _, ok := m.Get(i * 64); ok {
			t.Fatalf("key %d survived Clear", i*64)
		}
	}
	m.Put(64, 7)
	if v, ok := m.Get(64); !ok || v != 7 {
		t.Fatal("map unusable after Clear")
	}
}
