package profile

import (
	"strings"
	"testing"

	"prestores/internal/sim"
)

func TestSamplingInterval(t *testing.T) {
	s := New(10)
	m := sim.MachineA()
	m.SetHook(s.Hook())
	c := m.Core(0)
	for i := uint64(0); i < 100; i++ {
		c.Write(1<<40+i*64, []byte{1})
	}
	m.SetHook(nil)
	// 100 eligible ops at interval 10 -> 10 samples.
	if got := len(s.Samples()); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
}

func TestNonMemoryOpsNotSampled(t *testing.T) {
	s := New(1)
	m := sim.MachineA()
	m.SetHook(s.Hook())
	c := m.Core(0)
	c.Compute(100)
	c.PushFunc("f")
	c.PopFunc()
	m.SetHook(nil)
	if len(s.Samples()) != 0 {
		t.Fatalf("sampled %d non-memory ops", len(s.Samples()))
	}
}

func TestReportRanksByStores(t *testing.T) {
	s := New(1)
	m := sim.MachineA()
	m.SetHook(s.Hook())
	c := m.Core(0)
	c.PushFunc("writer")
	for i := uint64(0); i < 50; i++ {
		c.Write(1<<40+i*64, []byte{1})
	}
	c.PopFunc()
	c.PushFunc("reader")
	var b [1]byte
	for i := uint64(0); i < 50; i++ {
		c.Read(1<<40+i*64, b[:])
	}
	c.Write(1<<40, []byte{2}) // one store in reader
	c.PopFunc()
	m.SetHook(nil)
	rep := s.Report()
	if len(rep) != 2 {
		t.Fatalf("report has %d functions", len(rep))
	}
	if rep[0].Fn != "writer" {
		t.Fatalf("top function = %q", rep[0].Fn)
	}
	if rep[0].StoreShare <= rep[1].StoreShare {
		t.Fatal("store shares not ordered")
	}
	if rep[1].Loads == 0 {
		t.Fatal("reader loads not counted")
	}
}

func TestCallchains(t *testing.T) {
	s := New(1)
	m := sim.MachineA()
	m.SetHook(s.Hook())
	c := m.Core(0)
	c.PushFunc("app")
	c.PushFunc("memcpy")
	c.Write(1<<40, []byte{1})
	c.PopFunc()
	c.PopFunc()
	m.SetHook(nil)
	rep := s.Report()
	if len(rep) == 0 || len(rep[0].Callchains) == 0 {
		t.Fatal("no callchains recorded")
	}
	if !strings.Contains(rep[0].Callchains[0], "app>memcpy") {
		t.Fatalf("callchain = %q", rep[0].Callchains[0])
	}
}

func TestStoreTimeShare(t *testing.T) {
	// Time attribution: a write-heavy PMEM streamer spends most of its
	// time in stores; a compute loop with rare stores does not — the
	// paper's 10%-of-time screen.
	measure := func(writeHeavy bool) float64 {
		s := New(1)
		m := sim.MachineA()
		m.SetHook(s.Hook())
		c := m.Core(0)
		buf := make([]byte, 4096)
		for i := uint64(0); i < 3000; i++ {
			if writeHeavy {
				c.Write(1<<40+i*4096, buf)
			} else {
				c.Compute(500)
				if i%50 == 0 {
					c.Write(1<<40+i*64, []byte{1})
				}
			}
		}
		m.SetHook(nil)
		return s.StoreTimeShare()
	}
	if got := measure(true); got < 0.5 {
		t.Fatalf("PMEM streamer store-time share = %v, want > 0.5", got)
	}
	if got := measure(false); got >= 0.10 {
		t.Fatalf("compute loop store-time share = %v, want < 0.10", got)
	}
}

func TestReset(t *testing.T) {
	s := New(1)
	m := sim.MachineA()
	m.SetHook(s.Hook())
	m.Core(0).Write(1<<40, []byte{1})
	m.SetHook(nil)
	s.Reset()
	if len(s.Samples()) != 0 || s.StoreTimeShare() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestDefaultInterval(t *testing.T) {
	if New(0).Interval != 97 {
		t.Fatal("default interval")
	}
}
