// Package profile implements the sampling profiler DirtBuster's first
// step relies on — the simulator's stand-in for `perf record` with
// memory-access sampling (paper §6.2.1).
//
// The sampler observes every Nth memory operation, recording its kind,
// instruction pointer surrogate (the function annotation) and the full
// callchain. Sampling keeps the observation overhead negligible (the
// paper reports <1% for perf) at the cost of precision, which is why
// DirtBuster's later steps switch to full instrumentation: sampling one
// access every ~10K instructions is too coarse to detect sequential
// strides or compute re-use distances (§6.1).
package profile

import (
	"sort"

	"prestores/internal/sim"
)

// Sample is one recorded memory access.
type Sample struct {
	Kind      sim.OpKind
	Fn        string
	Callchain string // "outer>inner" joined chain
	Addr      uint64
}

// Sampler records every Nth load/store/fence-ish operation, and counts
// (without sampling) the instruction mix so that store *time* share can
// be estimated the way the paper screens applications.
type Sampler struct {
	Interval uint64 // sample every Interval-th eligible op
	counter  uint64
	samples  []Sample

	// Callchain rendering: the chain is built into a reused scratch
	// buffer and interned, so repeated samples of the same chain (the
	// overwhelmingly common case — programs sample the same few loops)
	// share one string instead of re-joining the stack per sample.
	chainBuf []byte
	chains   map[string]string

	loadOps  uint64
	storeOps uint64

	// Time attribution (cycles), perf-style: the share of time spent
	// in store instructions is what screens applications (§7.1).
	storeTime   uint64 // stores, NT stores, atomics
	loadTime    uint64
	computeTime uint64
	otherTime   uint64 // fences, pre-stores
}

// New returns a sampler with the given sampling interval (default 97 —
// co-prime with common loop lengths to avoid aliasing).
func New(interval uint64) *Sampler {
	if interval == 0 {
		interval = 97
	}
	return &Sampler{Interval: interval}
}

// Hook returns a sim.Hook that feeds the sampler.
func (s *Sampler) Hook() sim.Hook {
	return func(ev sim.Event, core *sim.Core) {
		switch ev.Kind {
		case sim.OpLoad:
			s.loadOps++
			s.loadTime += ev.Cost
		case sim.OpStore, sim.OpStoreNT, sim.OpAtomic:
			s.storeOps++
			s.storeTime += ev.Cost
		case sim.OpCompute:
			s.computeTime += ev.Cost
			return
		case sim.OpFence, sim.OpPrestoreClean, sim.OpPrestoreDemote:
			s.otherTime += ev.Cost
			return
		default:
			return
		}
		s.counter++
		if s.counter%s.Interval != 0 {
			return
		}
		s.chainBuf = core.AppendCallchain(s.chainBuf[:0], '>')
		chain, ok := s.chains[string(s.chainBuf)]
		if !ok {
			if s.chains == nil {
				s.chains = make(map[string]string)
			}
			chain = string(s.chainBuf)
			s.chains[chain] = chain
		}
		s.samples = append(s.samples, Sample{
			Kind:      ev.Kind,
			Fn:        ev.Fn,
			Callchain: chain,
			Addr:      ev.Addr,
		})
	}
}

// Samples returns the raw samples.
func (s *Sampler) Samples() []Sample { return s.samples }

// Reset discards collected samples and counters.
func (s *Sampler) Reset() {
	s.samples = s.samples[:0]
	s.counter = 0
	s.loadOps, s.storeOps = 0, 0
	s.storeTime, s.loadTime, s.computeTime, s.otherTime = 0, 0, 0, 0
}

// FuncStat summarizes the sampled activity of one function.
type FuncStat struct {
	Fn         string
	Loads      uint64
	Stores     uint64  // includes non-temporal stores and atomics
	StoreShare float64 // fraction of all sampled stores in this function
	// Callchains lists the most common chains leading here, most
	// frequent first — the paper uses these to find the application
	// code to patch when writes happen in generic library functions.
	Callchains []string
}

// Report aggregates samples per function, ordered by store count
// (write-intensive functions first).
func (s *Sampler) Report() []FuncStat {
	type agg struct {
		loads, stores uint64
		chains        map[string]int
	}
	byFn := make(map[string]*agg)
	var totalStores uint64
	for _, smp := range s.samples {
		a := byFn[smp.Fn]
		if a == nil {
			a = &agg{chains: make(map[string]int)}
			byFn[smp.Fn] = a
		}
		switch smp.Kind {
		case sim.OpLoad:
			a.loads++
		default:
			a.stores++
			totalStores++
			a.chains[smp.Callchain]++
		}
	}
	out := make([]FuncStat, 0, len(byFn))
	for fn, a := range byFn {
		fs := FuncStat{Fn: fn, Loads: a.loads, Stores: a.stores}
		if totalStores > 0 {
			fs.StoreShare = float64(a.stores) / float64(totalStores)
		}
		type cc struct {
			chain string
			n     int
		}
		chains := make([]cc, 0, len(a.chains))
		for ch, n := range a.chains {
			chains = append(chains, cc{ch, n})
		}
		sort.Slice(chains, func(i, j int) bool {
			if chains[i].n != chains[j].n {
				return chains[i].n > chains[j].n
			}
			return chains[i].chain < chains[j].chain
		})
		for i, ch := range chains {
			if i == 3 {
				break
			}
			fs.Callchains = append(fs.Callchains, ch.chain)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stores != out[j].Stores {
			return out[i].Stores > out[j].Stores
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// StoreTimeShare estimates the fraction of execution time spent in
// store instructions (including atomics) — the paper's "spend less
// than 10% of their time issuing store instructions" screen for
// Table 2, measured the way perf attributes cycles: stores to slow
// memories accumulate stall time far beyond their instruction count.
func (s *Sampler) StoreTimeShare() float64 {
	total := s.storeTime + s.loadTime + s.computeTime + s.otherTime
	if total == 0 {
		return 0
	}
	return float64(s.storeTime) / float64(total)
}
